"""Tests for ``CrossRowPredictor._select_threshold`` (held-out F1 cut-off).

The auto-threshold path trains a probe model on three quarters of the
trigger groups and picks the F1-maximising cut-off on the held-out
quarter.  These tests pin down the fallbacks (too little data, a
single-class fold) and the explicit-threshold override.
"""

import numpy as np
import pytest

from repro.core.crossrow import CrossRowPredictor

N_BLOCKS = 16  # default CrossRowWindow: +/-64 rows in 8-row blocks


def make_group_samples(n_groups, positives_in, rng):
    """Stacked (bank, block) samples: one positive block per listed group.

    The single feature column separates the classes (label + noise), so a
    probe model scores held-out blocks near-perfectly.
    """
    X = np.zeros((n_groups * N_BLOCKS, 3))
    y = np.zeros(n_groups * N_BLOCKS, dtype=int)
    for g in positives_in:
        y[g * N_BLOCKS + (g % N_BLOCKS)] = 1
    X[:, 0] = y + rng.normal(0.0, 0.05, size=len(y))
    X[:, 1] = rng.normal(size=len(y))
    X[:, 2] = rng.uniform(size=len(y))
    return X, y


class TestSelectThreshold:
    def test_too_few_groups_falls_back_to_half(self):
        rng = np.random.default_rng(0)
        X, y = make_group_samples(4, positives_in=range(4), rng=rng)
        predictor = CrossRowPredictor(model_name="Random Forest",
                                      random_state=0)
        predictor.fit_samples(X, y)
        assert predictor.effective_threshold == 0.5

    def test_single_class_validation_fold_falls_back_to_half(self):
        n_groups = 16
        # Reproduce the selector's own held-out split (seeded rng) and put
        # every positive in the *training* groups, leaving the validation
        # fold single-class.
        held_out = set(np.random.default_rng(13)
                       .choice(n_groups, size=n_groups // 4,
                               replace=False).tolist())
        train_groups = [g for g in range(n_groups) if g not in held_out]
        rng = np.random.default_rng(1)
        X, y = make_group_samples(n_groups, positives_in=train_groups,
                                  rng=rng)
        predictor = CrossRowPredictor(model_name="Random Forest",
                                      random_state=0)
        predictor.fit_samples(X, y)
        assert predictor.effective_threshold == 0.5

    def test_held_out_selection_picks_grid_threshold(self):
        rng = np.random.default_rng(2)
        X, y = make_group_samples(16, positives_in=range(16), rng=rng)
        predictor = CrossRowPredictor(model_name="Random Forest",
                                      random_state=0)
        predictor.fit_samples(X, y)
        threshold = predictor.effective_threshold
        assert 0.10 <= threshold <= 0.90
        # The scan runs over a 0.05-spaced grid — the pick must be on it.
        assert round(threshold / 0.05) * 0.05 == pytest.approx(threshold)

    def test_selection_is_deterministic(self):
        rng = np.random.default_rng(3)
        X, y = make_group_samples(16, positives_in=range(16), rng=rng)
        thresholds = []
        for _ in range(2):
            predictor = CrossRowPredictor(model_name="Random Forest",
                                          random_state=0)
            predictor.fit_samples(X, y)
            thresholds.append(predictor.effective_threshold)
        assert thresholds[0] == thresholds[1]

    def test_explicit_threshold_skips_selection(self):
        rng = np.random.default_rng(2)
        X, y = make_group_samples(16, positives_in=range(16), rng=rng)
        auto = CrossRowPredictor(model_name="Random Forest", random_state=0)
        auto.fit_samples(X, y)
        fixed = CrossRowPredictor(model_name="Random Forest", random_state=0,
                                  threshold=0.73)
        fixed.fit_samples(X, y)
        assert fixed.effective_threshold == 0.73
        assert fixed._auto_threshold == 0.5  # selector never ran
        assert auto.effective_threshold != 0.73

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            CrossRowPredictor(threshold=0.0)
        with pytest.raises(ValueError):
            CrossRowPredictor(threshold=1.0)
