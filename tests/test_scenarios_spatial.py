"""Tests for what-if scenarios and the spatial profile analysis."""

import numpy as np
import pytest

from repro.analysis.spatial import (bank_spatial_stats, column_concentration,
                                    fleet_spatial_profile,
                                    format_spatial_profile)
from repro.datasets import generate_fleet_dataset
from repro.faults.scenarios import SCENARIOS, list_scenarios
from repro.faults.types import FailurePattern, FaultType


class TestScenarios:
    def test_registry_complete(self):
        assert "baseline" in list_scenarios()
        assert len(list_scenarios()) >= 5

    def test_all_scenarios_generate(self):
        for name, factory in SCENARIOS.items():
            dataset = generate_fleet_dataset(factory(scale=0.02), seed=1)
            assert len(dataset.store) > 100, name

    def test_aged_fleet_has_more_faults(self):
        base = generate_fleet_dataset(SCENARIOS["baseline"](0.05), seed=2)
        aged = generate_fleet_dataset(SCENARIOS["aged-fleet"](0.05), seed=2)
        assert len(aged.uer_banks) > 1.4 * len(base.uer_banks)

    def test_tsv_dominant_shifts_pattern_mix(self):
        base = generate_fleet_dataset(SCENARIOS["baseline"](0.1), seed=3)
        tsv = generate_fleet_dataset(SCENARIOS["tsv-dominant"](0.1), seed=3)

        def scattered_share(dataset):
            patterns = [t.pattern for t in dataset.bank_truth.values()
                        if t.pattern is not None]
            return (sum(p is FailurePattern.SCATTERED for p in patterns)
                    / len(patterns))

        assert scattered_share(tsv) > scattered_share(base) + 0.1

    def test_ce_storm_multiplies_events(self):
        base = generate_fleet_dataset(SCENARIOS["baseline"](0.05), seed=4)
        storm = generate_fleet_dataset(SCENARIOS["ce-storm"](0.05), seed=4)
        assert len(storm.store) > 2 * len(base.store)

    def test_sudden_heavy_drops_bank_predictability(self):
        from repro.analysis.sudden import compute_sudden_uer_table
        from repro.hbm.address import MicroLevel
        base = generate_fleet_dataset(SCENARIOS["baseline"](0.1), seed=5)
        sudden = generate_fleet_dataset(SCENARIOS["sudden-heavy"](0.1),
                                        seed=5)
        ratio_base = compute_sudden_uer_table(
            base.store)[MicroLevel.BANK].predictable_ratio
        ratio_sudden = compute_sudden_uer_table(
            sudden.store)[MicroLevel.BANK].predictable_ratio
        assert ratio_sudden < ratio_base

    def test_fast_failing_compresses_timelines(self):
        from repro.analysis.temporal import uer_acceleration
        base = generate_fleet_dataset(SCENARIOS["baseline"](0.1), seed=6)
        fast = generate_fleet_dataset(SCENARIOS["fast-failing"](0.1),
                                      seed=6)
        first_base, _ = uer_acceleration(base.store)
        first_fast, _ = uer_acceleration(fast.store)
        assert first_fast < first_base

    def test_validation(self):
        with pytest.raises(ValueError):
            SCENARIOS["aged-fleet"](0.1, aging_factor=0.5)
        with pytest.raises(ValueError):
            SCENARIOS["ce-storm"](0.1, storm_factor=0.5)


class TestSpatialAnalysis:
    def test_column_concentration_bounds(self):
        assert column_concentration([7, 7, 7]) == 1.0
        assert column_concentration(list(range(10))) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            column_concentration([])

    def test_bank_stats_on_fleet(self, small_dataset):
        bank = small_dataset.uer_banks[0]
        stats = bank_spatial_stats(small_dataset.store, bank)
        assert stats is not None
        assert stats.n_uer_rows >= 1
        assert stats.span >= 0
        assert stats.n_clusters >= 1
        assert 0 < stats.column_concentration <= 1

    def test_none_for_ce_only_bank(self, small_dataset):
        ce_only = next(k for k, t in small_dataset.bank_truth.items()
                       if not t.uer_row_sequence)
        assert bank_spatial_stats(small_dataset.store, ce_only) is None

    def test_profile_separates_patterns(self, small_dataset):
        pattern_of = {k: t.pattern.value
                      for k, t in small_dataset.bank_truth.items()
                      if t.pattern is not None}
        profile = fleet_spatial_profile(small_dataset.store, pattern_of,
                                        min_uer_rows=3)
        single = profile.get(FailurePattern.SINGLE_ROW.value)
        scattered = profile.get(FailurePattern.SCATTERED.value)
        assert single and scattered
        # the defining spatial contrast of Figure 3
        assert single["median_span"] < scattered["median_span"]

    def test_whole_column_concentration_visible(self, small_dataset):
        from repro.faults.types import FIG3B_SLICE_LABELS
        labels = {k: FIG3B_SLICE_LABELS[t.fault_type]
                  for k, t in small_dataset.bank_truth.items()
                  if t.fault_type is not FaultType.CELL_FAULT}
        profile = fleet_spatial_profile(small_dataset.store, labels,
                                        min_uer_rows=2)
        column = profile.get("Whole Column")
        single = profile.get("Single-row Clustering")
        if column and single:
            assert (column["median_column_concentration"]
                    > single["median_column_concentration"])

    def test_format_renders(self, small_dataset):
        profile = fleet_spatial_profile(small_dataset.store)
        text = format_spatial_profile(profile)
        assert "col-conc" in text
