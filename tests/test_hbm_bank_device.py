"""Tests for per-bank bookkeeping and the sparse fleet containers."""

import pytest

from repro.hbm.bank import BankState
from repro.hbm.device import FleetState
from repro.hbm.ecc import ECCOutcome
from repro.hbm.address import DeviceAddress, MicroLevel


def make_address(row=10, column=3, bank=0):
    return DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                         pseudo_channel=0, bank_group=0, bank=bank,
                         row=row, column=column)


class TestBankState:
    def test_record_and_query(self):
        bank = BankState(bank_key=("b",), rows=100, columns=8)
        bank.record(1.0, 10, 2, ECCOutcome.CE)
        bank.record(2.0, 11, 2, ECCOutcome.UER)
        bank.record(3.0, 11, 3, ECCOutcome.UER)
        assert bank.rows_with(ECCOutcome.CE) == {10}
        assert bank.rows_with(ECCOutcome.UER) == {11}
        assert bank.event_count(ECCOutcome.UER) == 2
        assert bank.first_event_time(ECCOutcome.UER) == 2.0
        assert bank.first_event_time(ECCOutcome.UEO) is None

    def test_uer_rows_in_order_deduplicates(self):
        bank = BankState(bank_key=("b",), rows=100, columns=8)
        for t, row in [(1.0, 5), (2.0, 9), (3.0, 5), (4.0, 2)]:
            bank.record(t, row, 0, ECCOutcome.UER)
        assert bank.uer_rows_in_order() == [5, 9, 2]

    def test_rejects_out_of_range(self):
        bank = BankState(bank_key=("b",), rows=100, columns=8)
        with pytest.raises(ValueError):
            bank.record(1.0, 100, 0, ECCOutcome.CE)
        with pytest.raises(ValueError):
            bank.record(1.0, 0, 8, ECCOutcome.CE)

    def test_rejects_time_travel(self):
        bank = BankState(bank_key=("b",), rows=100, columns=8)
        bank.record(5.0, 1, 0, ECCOutcome.CE)
        with pytest.raises(ValueError):
            bank.record(4.0, 2, 0, ECCOutcome.CE)

    def test_error_map_counts_hits(self):
        bank = BankState(bank_key=("b",), rows=100, columns=8)
        bank.record(1.0, 7, 1, ECCOutcome.CE)
        bank.record(2.0, 7, 1, ECCOutcome.CE)
        assert bank.error_map() == {(7, 1): 2}


class TestFleetState:
    def test_lazy_population(self):
        fleet = FleetState()
        assert fleet.touched_bank_count == 0
        fleet.record(1.0, make_address(), ECCOutcome.CE)
        assert fleet.touched_bank_count == 1

    def test_same_bank_reused(self):
        fleet = FleetState()
        b1 = fleet.record(1.0, make_address(row=5), ECCOutcome.CE)
        b2 = fleet.record(2.0, make_address(row=6), ECCOutcome.UER)
        assert b1 is b2
        assert b1.event_count(ECCOutcome.CE) == 1
        assert b1.event_count(ECCOutcome.UER) == 1

    def test_different_banks_separate(self):
        fleet = FleetState()
        fleet.record(1.0, make_address(bank=0), ECCOutcome.CE)
        fleet.record(2.0, make_address(bank=1), ECCOutcome.CE)
        assert fleet.touched_bank_count == 2
        keys = {key for key, _ in fleet.iter_banks()}
        assert len(keys) == 2

    def test_validate_flag(self):
        fleet = FleetState()
        bad = DeviceAddress(node=99999, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0, row=0)
        with pytest.raises(ValueError):
            fleet.record(1.0, bad, ECCOutcome.CE, validate=True)

    def test_bank_key_consistency(self):
        fleet = FleetState()
        address = make_address()
        bank = fleet.record(1.0, address, ECCOutcome.CE)
        assert bank.bank_key == address.key(MicroLevel.BANK)
