"""Tests for classification metrics and group-aware splitting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import (accuracy_score, binary_scores,
                              classification_report, confusion_matrix,
                              precision_recall_f1, weighted_average)
from repro.ml.selection import group_mask, train_test_split_groups


class TestConfusionAndAccuracy:
    def test_confusion_matrix_hand_example(self):
        y_true = ["a", "a", "b", "b", "c"]
        y_pred = ["a", "b", "b", "b", "a"]
        matrix = confusion_matrix(y_true, y_pred, labels=["a", "b", "c"])
        assert matrix.tolist() == [[1, 1, 0], [0, 2, 0], [1, 0, 0]]

    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 2], [1])


class TestPrecisionRecallF1:
    def test_hand_computed(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        scores = precision_recall_f1(y_true, y_pred)
        assert scores[1].precision == pytest.approx(2 / 3)
        assert scores[1].recall == pytest.approx(2 / 3)
        assert scores[1].f1 == pytest.approx(2 / 3)
        assert scores[0].precision == pytest.approx(1 / 2)
        assert scores[0].support == 2

    def test_zero_division_convention(self):
        scores = precision_recall_f1([0, 0], [0, 0], labels=[0, 1])
        assert scores[1].precision == 0.0
        assert scores[1].recall == 0.0
        assert scores[1].f1 == 0.0

    def test_weighted_average(self):
        scores = precision_recall_f1([1, 1, 1, 0], [1, 1, 1, 1])
        avg = weighted_average(scores)
        # class 1: P=3/4 R=1 F1=6/7 support 3; class 0: all 0, support 1
        assert avg.recall == pytest.approx(3 / 4)
        assert avg.f1 == pytest.approx((6 / 7) * 3 / 4)
        assert avg.support == 4

    def test_binary_scores_positive_class(self):
        scores = binary_scores([True, True, False, False],
                               [True, False, True, False])
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(0.5)
        assert scores.support == 2

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_perfect_prediction_scores_one_or_zero(self, y):
        scores = binary_scores(y, y)
        if any(y):
            assert scores.precision == 1.0
            assert scores.recall == 1.0
            assert scores.f1 == 1.0
        else:
            assert scores.f1 == 0.0

    @given(st.lists(st.sampled_from([0, 1, 2]), min_size=2, max_size=60),
           st.lists(st.sampled_from([0, 1, 2]), min_size=2, max_size=60))
    def test_metric_bounds(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        scores = precision_recall_f1(y_true[:n], y_pred[:n])
        for s in scores.values():
            assert 0.0 <= s.precision <= 1.0
            assert 0.0 <= s.recall <= 1.0
            assert 0.0 <= s.f1 <= 1.0

    def test_report_renders(self):
        text = classification_report([0, 1, 1], [0, 1, 0])
        assert "weighted avg" in text
        assert "precision" in text


class TestGroupSplit:
    def test_split_is_partition(self):
        groups = [f"bank{i}" for i in range(100)]
        train, test = train_test_split_groups(groups, 0.3, seed=0)
        assert set(train) | set(test) == set(groups)
        assert set(train) & set(test) == set()
        assert len(test) == 30

    def test_duplicates_collapse(self):
        groups = ["a", "a", "b", "b", "c"]
        train, test = train_test_split_groups(groups, 0.34, seed=1)
        assert set(train) | set(test) == {"a", "b", "c"}

    def test_deterministic_under_seed(self):
        groups = list(range(50))
        assert (train_test_split_groups(groups, 0.3, seed=5)
                == train_test_split_groups(groups, 0.3, seed=5))
        assert (train_test_split_groups(groups, 0.3, seed=5)
                != train_test_split_groups(groups, 0.3, seed=6))

    def test_never_empty_sides(self):
        train, test = train_test_split_groups(["a", "b"], 0.99, seed=0)
        assert train and test

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split_groups(["a", "b"], 0.0)
        with pytest.raises(ValueError):
            train_test_split_groups(["a", "b"], 1.0)

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            train_test_split_groups(["a", "a"], 0.5)

    def test_group_mask(self):
        groups = ["a", "b", "a", "c"]
        mask = group_mask(groups, ["a", "c"])
        assert mask.tolist() == [True, False, True, True]

    @given(st.integers(0, 500))
    def test_fraction_respected_property(self, seed):
        groups = list(range(40))
        train, test = train_test_split_groups(groups, 0.25, seed=seed)
        assert len(test) == 10
        assert len(train) == 30
