"""Tests for the experiment context caching and the runner CLI shell."""

import pytest

from repro.experiments.common import PAPER_MODEL_ORDER, ExperimentContext
from repro.experiments.runner import main


class TestExperimentContext:
    def test_dataset_cached(self):
        context = ExperimentContext(scale=0.02, seed=3)
        assert context.dataset is context.dataset

    def test_split_is_seven_three_partition(self):
        context = ExperimentContext(scale=0.05, seed=3)
        train, test = context.split
        banks = set(context.dataset.uer_banks)
        assert set(train) | set(test) == banks
        assert not set(train) & set(test)
        assert abs(len(test) / len(banks) - 0.3) < 0.05

    def test_split_cached(self):
        context = ExperimentContext(scale=0.02, seed=3)
        assert context.split is context.split

    def test_model_order_constant(self):
        assert PAPER_MODEL_ORDER == ("LightGBM", "XGBoost", "Random Forest")

    def test_model_and_evaluation_cached(self):
        context = ExperimentContext(scale=0.05, seed=3)
        model = context.model("LightGBM")
        assert context.model("LightGBM") is model
        evaluation = context.evaluation("LightGBM")
        assert context.evaluation("LightGBM") is evaluation

    def test_baseline_cached(self):
        context = ExperimentContext(scale=0.05, seed=3)
        assert (context.baseline_evaluation()
                is context.baseline_evaluation())


class TestRunnerCLI:
    def test_fast_run_writes_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(["--scale", "0.05", "--seed", "3", "--fast",
                     "--output", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "== E1" in text and "== E7" in text
        assert "== E3" not in text
        printed = capsys.readouterr().out
        assert "Table I" in printed

    def test_examples_flag_adds_maps(self, tmp_path, capsys):
        code = main(["--scale", "0.05", "--seed", "3", "--fast",
                     "--examples"])
        assert code == 0
        assert "---" in capsys.readouterr().out
