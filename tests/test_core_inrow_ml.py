"""Tests for the hierarchical in-row predictor (the replaced paradigm)."""

import numpy as np
import pytest

from repro.core.inrow_ml import (FEATURE_NAMES, HierarchicalInRowPredictor,
                                 InRowEvaluation)


class TestSamples:
    def test_one_sample_per_candidate_row(self, small_dataset):
        predictor = HierarchicalInRowPredictor(min_precursors=1)
        banks = small_dataset.uer_banks[:30]
        samples = predictor.build_samples(small_dataset, banks)
        keys = [(s.bank_key, s.row) for s in samples]
        assert len(keys) == len(set(keys))

    def test_feature_vector_shape(self, small_dataset):
        predictor = HierarchicalInRowPredictor()
        samples = predictor.build_samples(small_dataset,
                                          small_dataset.uer_banks[:20])
        assert samples, "UER banks with CE streams must yield candidates"
        for sample in samples:
            assert sample.features.shape == (len(FEATURE_NAMES),)

    def test_labels_respect_time(self, small_dataset):
        """A row whose only UER precedes its precursor is a negative."""
        predictor = HierarchicalInRowPredictor()
        samples = predictor.build_samples(small_dataset,
                                          small_dataset.uer_banks)
        for sample in samples:
            truth = small_dataset.bank_truth[sample.bank_key]
            uer_time = dict((row, t)
                            for t, row in truth.uer_row_sequence).get(
                sample.row)
            expected = (uer_time is not None
                        and uer_time > sample.snapshot_time)
            assert sample.label == expected

    def test_min_precursors_raises_bar(self, small_dataset):
        banks = small_dataset.uer_banks
        loose = HierarchicalInRowPredictor(min_precursors=1)
        strict = HierarchicalInRowPredictor(min_precursors=3)
        assert (len(strict.build_samples(small_dataset, banks))
                <= len(loose.build_samples(small_dataset, banks)))


class TestEvaluation:
    def test_coverage_capped_by_ceiling(self, small_dataset, bank_split):
        train, test = bank_split
        predictor = HierarchicalInRowPredictor(model_name="LightGBM",
                                               random_state=0)
        predictor.fit(small_dataset, train)
        result = predictor.evaluate(small_dataset, test)
        assert isinstance(result, InRowEvaluation)
        assert result.uer_row_coverage <= result.coverage_ceiling + 1e-9
        # the paradigm cap that motivates the paper:
        assert result.coverage_ceiling < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalInRowPredictor(min_precursors=0)
        with pytest.raises(ValueError):
            HierarchicalInRowPredictor(threshold=0.0)

    def test_predict_before_fit(self, small_dataset):
        predictor = HierarchicalInRowPredictor()
        samples = predictor.build_samples(small_dataset,
                                          small_dataset.uer_banks[:10])
        with pytest.raises(RuntimeError):
            predictor.predict_samples(samples)
