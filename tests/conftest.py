"""Shared fixtures: one small fleet dataset reused across test modules.

Generating a fleet is the most expensive step, so the dataset (and a
train/test split of its banks) is session-scoped; tests must not mutate it.
"""

import pytest

from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups

SMALL_SCALE = 0.12
SEED = 42


@pytest.fixture(scope="session")
def small_dataset():
    """A ~12 %-scale fleet: ~50 bad HBMs, ~130 UER banks, ~6k events."""
    return generate_fleet_dataset(FleetGenConfig(scale=SMALL_SCALE),
                                  seed=SEED)


@pytest.fixture(scope="session")
def bank_split(small_dataset):
    """70:30 group-aware split of the small fleet's UER banks."""
    return train_test_split_groups(small_dataset.uer_banks,
                                   test_fraction=0.3, seed=7)
