"""End-to-end tests of the operator CLI (generate -> train -> predict ->
analyze), all through real files."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def fleet_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fleet.mce"
    assert main(["generate", "--scale", "0.08", "--seed", "11",
                 "--output", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def pipeline_file(fleet_log, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "pipeline.json"
    assert main(["train", "--log", str(fleet_log), "--output", str(path),
                 "--model", "LightGBM"]) == 0
    return path


class TestGenerate:
    def test_writes_parseable_log(self, fleet_log):
        from repro.telemetry.mcelog import read_mce_log
        records = read_mce_log(fleet_log)
        assert len(records) > 1000

    def test_output_deterministic(self, tmp_path):
        a = tmp_path / "a.mce"
        b = tmp_path / "b.mce"
        main(["generate", "--scale", "0.03", "--seed", "3",
              "--output", str(a)])
        main(["generate", "--scale", "0.03", "--seed", "3",
              "--output", str(b)])
        assert a.read_text() == b.read_text()


class TestTrain:
    def test_pipeline_file_valid(self, pipeline_file):
        document = json.loads(pipeline_file.read_text())
        assert document["format"] == "cordial-pipeline"
        assert document["config"]["model_name"] == "LightGBM"

    def test_too_small_log_fails_cleanly(self, tmp_path, capsys):
        log = tmp_path / "tiny.mce"
        main(["generate", "--scale", "0.005", "--seed", "1",
              "--output", str(log)])
        code = main(["train", "--log", str(log),
                     "--output", str(tmp_path / "p.json")])
        if code != 0:
            assert "error" in capsys.readouterr().err


class TestPredict:
    def test_human_output(self, fleet_log, pipeline_file, capsys):
        assert main(["predict", "--pipeline", str(pipeline_file),
                     "--log", str(fleet_log)]) == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "spare" in out

    def test_json_output(self, fleet_log, pipeline_file, capsys):
        assert main(["predict", "--pipeline", str(pipeline_file),
                     "--log", str(fleet_log), "--json"]) == 0
        decisions = json.loads(capsys.readouterr().out)
        assert decisions
        for decision in decisions:
            assert decision["action"] in ("row-spare", "bank-spare")
            assert decision["pattern"]
            if decision["action"] == "bank-spare":
                assert decision["rows"] == []


class TestEvaluate:
    def test_writes_report(self, fleet_log, tmp_path, capsys):
        report = tmp_path / "report.md"
        code = main(["evaluate", "--log", str(fleet_log), "--model",
                     "LightGBM", "--output", str(report)])
        assert code == 0
        text = report.read_text()
        assert "Failure-pattern classification" in text
        assert "vs Neighbor-Rows baseline" in text
        out = capsys.readouterr().out
        assert "ICR" in out


class TestAnalyze:
    def test_prints_study_tables(self, fleet_log, capsys):
        assert main(["analyze", "--log", str(fleet_log)]) == 0
        out = capsys.readouterr().out
        assert "Predictable Ratio" in out
        assert "With UEO" in out
        assert "Chi-Squared" in out
