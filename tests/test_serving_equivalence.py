"""Equivalence guarantees of the hardened serving path.

Locks down the three acceptance properties of the online service:

(a) a stream shuffled within ``max_skew`` yields decisions identical to
    the sorted stream;
(b) checkpoint -> restart -> resume yields decisions and a final ICR
    byte-identical to an uninterrupted run;
(c) the serve-replay metrics report agrees with ``Cordial.evaluate`` on
    the same data.
"""

import json

import pytest

from repro.core.online import CordialService
from repro.core.persistence import (load_service_checkpoint,
                                    pipeline_to_document,
                                    save_service_checkpoint)
from repro.core.pipeline import Cordial
from repro.experiments import runner
from repro.experiments.serve import bounded_shuffle, build_report, serve_stream
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType


def rec(seq, t, row, error_type=ErrorType.UER):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


@pytest.fixture(scope="module")
def cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(small_dataset, train)
    return model


@pytest.fixture(scope="module")
def test_stream(small_dataset, bank_split):
    _, test = bank_split
    test_set = set(test)
    return [r for r in small_dataset.store if r.bank_key in test_set]


@pytest.fixture(scope="module")
def truth(small_dataset, bank_split):
    _, test = bank_split
    return {bank: small_dataset.bank_truth[bank].uer_row_sequence
            for bank in test
            if small_dataset.bank_truth[bank].uer_row_sequence}


def decisions_json(decisions):
    return json.dumps([d.to_obj() for d in decisions], sort_keys=True)


class TestReorderEquivalence:
    def test_shuffled_stream_matches_sorted(self, cordial, test_stream,
                                            truth):
        """(a): bounded disorder is invisible to the decision stream."""
        max_skew = 3600.0  # one stream-hour of tolerated disorder
        baseline = CordialService(cordial)
        _, expect = serve_stream(baseline, test_stream)

        shuffled = bounded_shuffle(test_stream, max_skew, seed=5)
        assert [r.sequence for r in shuffled] != \
               [r.sequence for r in test_stream]  # shuffle actually shuffled
        service = CordialService(cordial, max_skew=max_skew)
        _, got = serve_stream(service, shuffled)

        assert decisions_json(got) == decisions_json(expect)
        assert service.collector.dead_letter_counts == {}
        assert service.stats.to_dict() == baseline.stats.to_dict()
        assert service.coverage(truth) == baseline.coverage(truth)

    def test_hopelessly_late_event_is_quarantined(self, cordial):
        service = CordialService(cordial, max_skew=10.0)
        service.ingest(rec(0, 1000.0, 1))
        assert service.ingest(rec(1, 1.0, 2)) == []  # far beyond the skew
        assert service.collector.dead_letter_counts == {"late": 1}
        # The service keeps serving after quarantining.
        service.ingest(rec(2, 1001.0, 3))
        service.flush()
        assert service.stats.events_ingested == 3

    def test_malformed_input_is_quarantined(self, cordial):
        service = CordialService(cordial)
        assert service.ingest(None) == []
        assert service.collector.dead_letter_counts == {"malformed": 1}


class TestCheckpointRestore:
    def test_resume_is_byte_identical(self, cordial, test_stream, truth,
                                      tmp_path):
        """(b): a restored service continues exactly where it left off."""
        baseline = CordialService(cordial, max_skew=120.0)
        _, expect = serve_stream(baseline, test_stream)

        path = str(tmp_path / "service.ckpt.json")
        fresh = CordialService(cordial, max_skew=120.0)
        restored, got = serve_stream(fresh, test_stream,
                                     checkpoint_path=path,
                                     checkpoint_at=len(test_stream) // 2)
        assert restored is not fresh  # the restart really happened

        assert decisions_json(got) == decisions_json(expect)
        assert restored.replay.result(truth) == baseline.replay.result(truth)
        assert restored.stats.to_dict() == baseline.stats.to_dict()
        # Deterministic metrics agree too (histograms are wall-clock).
        assert restored.metrics.as_dict(include_histograms=False) == \
               baseline.metrics.as_dict(include_histograms=False)

    def test_checkpoint_preserves_full_state_dict(self, cordial, test_stream,
                                                  tmp_path):
        service = CordialService(cordial, max_skew=120.0)
        for record in test_stream[:len(test_stream) // 2]:
            service.ingest(record)
        path = str(tmp_path / "mid.ckpt.json")
        save_service_checkpoint(service, path)
        restored = load_service_checkpoint(path)
        assert restored.state_dict() == service.state_dict()

    def test_checkpoint_file_is_versioned_json(self, cordial, test_stream,
                                               tmp_path):
        service = CordialService(cordial)
        for record in test_stream[:50]:
            service.ingest(record)
        path = tmp_path / "ckpt.json"
        save_service_checkpoint(service, str(path))
        document = json.loads(path.read_text())
        assert document["format"] == "cordial-service-checkpoint"
        assert document["version"] == 3
        assert "pipeline" in document and "state" in document
        assert "feature_state" in document["state"]

    def test_version1_checkpoint_still_loads(self, cordial, test_stream,
                                             truth, tmp_path):
        """A v1 document (no feature_state) restores and resumes exactly:
        the incremental state is rebuilt from the collector histories."""
        baseline = CordialService(cordial)
        _, expect = serve_stream(baseline, test_stream)

        half = len(test_stream) // 2
        service = CordialService(cordial)
        decisions = []
        for record in test_stream[:half]:
            decisions.extend(service.ingest(record))
        document = {
            "format": "cordial-service-checkpoint",
            "version": 1,
            "pipeline": pipeline_to_document(service.cordial),
            "state": {k: v for k, v in service.state_dict().items()
                      if k != "feature_state"},
        }
        path = tmp_path / "v1.ckpt.json"
        path.write_text(json.dumps(document))
        restored = load_service_checkpoint(str(path))
        for record in test_stream[half:]:
            decisions.extend(restored.ingest(record))
        decisions.extend(restored.flush())
        assert decisions_json(decisions) == decisions_json(expect)
        assert restored.coverage(truth) == baseline.coverage(truth)


class TestServeReplayReport:
    def test_counts_match_batch_evaluate(self, cordial, small_dataset,
                                         bank_split, test_stream, truth):
        """(c): the streaming report agrees with ``Cordial.evaluate``."""
        _, test = bank_split
        service = CordialService(cordial,
                                 spares_per_bank=cordial.spares_per_bank)
        service, decisions = serve_stream(service, test_stream)
        report = build_report(service, decisions, truth)

        batch = cordial.evaluate(small_dataset, test)
        summary = report["summary"]
        assert summary["triggers_fired"] == batch.n_test_triggers
        assert summary["row_spare_triggers"] == batch.n_crossrow_banks
        assert summary["bank_spares"] == (batch.n_test_triggers
                                          - batch.n_crossrow_banks)
        assert summary["icr"] == pytest.approx(batch.icr.icr, abs=0.02)
        assert summary["events_ingested"] == len(test_stream)
        assert summary["events_dead_lettered"] == {}
        # The report is JSON-serialisable as-is.
        json.dumps(report, sort_keys=True)

    def test_cli_smoke(self, tmp_path):
        output = tmp_path / "serve_metrics.json"
        checkpoint = tmp_path / "ckpt.json"
        code = runner.main([
            "serve-replay", "--scale", "0.08", "--seed", "11",
            "--max-skew", "600", "--shuffle",
            "--checkpoint", str(checkpoint),
            "--output", str(output),
        ])
        assert code == 0
        report = json.loads(output.read_text())
        summary = report["summary"]
        assert summary["events_ingested"] > 0
        assert summary["triggers_fired"] > 0
        assert summary["decisions_total"] >= summary["triggers_fired"]
        assert 0.0 <= summary["icr"] <= 1.0
        assert report["config"]["checkpointed_at"] > 0
        assert checkpoint.exists()
        assert "collector.events_ingested" in report["metrics"]["counters"]
