"""Golden-file regression test of the dataset RNG flow.

Pins the SHA-256 digest of a small-scale fleet (canonical serialisation
of the full record stream plus ground truth — see
:mod:`repro.datasets.digest`).  Any change to the seeding tree, the
placement/realisation split, the merge order, or any distribution draw
shows up here as an explicit, reviewed failure instead of a silent drift
in every downstream result.

If you changed the RNG flow *on purpose*, regenerate the golden value
with::

    PYTHONPATH=src python -m repro.datasets.digest --scale 0.02 --seed 123

and update ``GOLDEN_DIGEST`` (and ``GOLDEN_NUMPY_SERIES`` if numpy moved
to a new major version) together with a CHANGES.md note.
"""

import numpy as np
import pytest

from repro.datasets import (FleetGenConfig, canonical_lines, fleet_digest,
                            generate_fleet_dataset)

GOLDEN_SCALE = 0.02
GOLDEN_SEED = 123

#: Digest of generate_fleet_dataset(FleetGenConfig(scale=0.02), seed=123).
GOLDEN_DIGEST = ("ff97568d3e4093fe15d0b547dac87dcdb28832f67c5837d1"
                 "026c6e6eaf5cd275")

#: The numpy major series the golden value was recorded under.  PCG64 bit
#: streams are stable across releases; distribution algorithms only change
#: across major versions, if ever.
GOLDEN_NUMPY_SERIES = "2."


@pytest.fixture(scope="module")
def golden_dataset():
    return generate_fleet_dataset(FleetGenConfig(scale=GOLDEN_SCALE),
                                  seed=GOLDEN_SEED, jobs=1)


class TestGoldenDigest:
    def test_digest_matches_golden(self, golden_dataset):
        if not np.__version__.startswith(GOLDEN_NUMPY_SERIES):
            pytest.skip(f"golden recorded under numpy "
                        f"{GOLDEN_NUMPY_SERIES}x, running "
                        f"{np.__version__}")
        assert fleet_digest(golden_dataset) == GOLDEN_DIGEST, (
            "The fleet RNG flow changed. If intentional, regenerate with: "
            "PYTHONPATH=src python -m repro.datasets.digest "
            f"--scale {GOLDEN_SCALE} --seed {GOLDEN_SEED}")

    def test_parallel_generation_hits_same_golden(self, golden_dataset):
        parallel = generate_fleet_dataset(FleetGenConfig(scale=GOLDEN_SCALE),
                                          seed=GOLDEN_SEED, jobs=2)
        assert fleet_digest(parallel) == fleet_digest(golden_dataset)

    def test_digest_is_reproducible_in_process(self, golden_dataset):
        again = generate_fleet_dataset(FleetGenConfig(scale=GOLDEN_SCALE),
                                       seed=GOLDEN_SEED)
        assert fleet_digest(again) == fleet_digest(golden_dataset)

    def test_digest_sensitive_to_seed(self, golden_dataset):
        other = generate_fleet_dataset(FleetGenConfig(scale=GOLDEN_SCALE),
                                       seed=GOLDEN_SEED + 1)
        assert fleet_digest(other) != fleet_digest(golden_dataset)


class TestCanonicalSerialisation:
    def test_covers_stream_and_truth(self, golden_dataset):
        lines = list(canonical_lines(golden_dataset))
        assert len(lines) == (len(golden_dataset.store)
                              + len(golden_dataset.bank_truth))

    def test_lines_are_stable(self, golden_dataset):
        assert (list(canonical_lines(golden_dataset))
                == list(canonical_lines(golden_dataset)))
