"""Tests for the post-package repair (PPR) flow."""

import pytest

from repro.hbm.repair import PPRManager, PPRPolicy, RepairState

BANK = (0,) * 8


class TestPPRPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            PPRPolicy(soft_latency_s=-1)
        with pytest.raises(ValueError):
            PPRPolicy(hard_failure_prob=1.5)


class TestPPRManager:
    def test_successful_repair_protects_after_latency(self):
        manager = PPRManager(PPRPolicy(soft_latency_s=10.0,
                                       soft_failure_prob=0.0,
                                       hard_failure_prob=0.0), seed=0)
        record = manager.request_repair(BANK, 5, timestamp=100.0)
        assert record.state is RepairState.HARD_REPAIRED
        assert not manager.is_protected(BANK, 5, at_time=105.0)  # in flight
        assert manager.is_protected(BANK, 5, at_time=111.0)

    def test_soft_failure_leaves_row_unprotected(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=1.0), seed=0)
        record = manager.request_repair(BANK, 5, timestamp=0.0)
        assert record.state is RepairState.FAILED
        assert not manager.is_protected(BANK, 5)

    def test_hard_failure_still_soft_protects(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=0.0,
                                       hard_failure_prob=1.0), seed=0)
        record = manager.request_repair(BANK, 5, timestamp=0.0)
        assert record.state is RepairState.SOFT_REPAIRED
        assert manager.is_protected(BANK, 5, at_time=10.0)

    def test_budget_exhaustion_fails_requests(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=0.0,
                                       hard_failure_prob=0.0),
                             spares_per_bank=2, seed=0)
        states = [manager.request_repair(BANK, row, 0.0).state
                  for row in range(4)]
        assert states[:2] == [RepairState.HARD_REPAIRED] * 2
        assert states[2:] == [RepairState.FAILED] * 2

    def test_idempotent_repair(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=0.0,
                                       hard_failure_prob=0.0), seed=0)
        manager.request_repair(BANK, 5, timestamp=0.0)
        again = manager.request_repair(BANK, 5, timestamp=50.0)
        assert again.state is RepairState.SOFT_REPAIRED
        assert manager.controller.spared_row_count(BANK) == 1

    def test_request_block(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=0.0,
                                       hard_failure_prob=0.0), seed=0)
        records = manager.request_block(BANK, range(100, 108), 0.0)
        assert len(records) == 8
        assert all(r.state is RepairState.HARD_REPAIRED for r in records)

    def test_summary_counts(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=0.0,
                                       hard_failure_prob=0.5), seed=1)
        for row in range(40):
            manager.request_repair(BANK, row, 0.0)
        summary = manager.summary()
        assert summary["hard"] + summary["soft"] + summary["failed"] == 40
        assert summary["soft"] > 5  # ~half fail the fuse stage

    def test_power_cycle_survival(self):
        manager = PPRManager(PPRPolicy(soft_failure_prob=0.0,
                                       hard_failure_prob=0.5), seed=2)
        for row in range(30):
            manager.request_repair(BANK, row, 0.0)
        surviving, lost = manager.survival_after_power_cycle()
        assert surviving + lost == 30
        assert surviving > 0 and lost > 0
