"""Crash-recovery guarantees under repeated kill/restore and tampering.

Satellites of the chaos harness:

* a service killed and restored from its checkpoint at *every* k-th
  ingest point emits decisions and a final ICR byte-identical to an
  uninterrupted run — restarts are invisible at any frequency;
* every tampered checkpoint (truncated, header-mangled, key-dropped)
  is rejected with the typed :class:`CheckpointCorruptionError`;
* a failed restore is transactional — the in-memory service is left
  exactly as it was.
"""

import copy
import json

import numpy as np
import pytest

from repro.chaos.faults import (TAMPER_MODES, serve_with_faults,
                                tamper_checkpoint)
from repro.core.online import CordialService
from repro.core.persistence import (CheckpointCorruptionError,
                                    ModelPersistenceError,
                                    load_service_checkpoint, save_cordial,
                                    save_service_checkpoint)
from repro.core.pipeline import Cordial
from repro.experiments.serve import serve_stream


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(small_dataset, train)
    return model


@pytest.fixture(scope="module")
def test_stream(small_dataset, bank_split):
    _, test = bank_split
    test_set = set(test)
    return [r for r in small_dataset.store if r.bank_key in test_set]


@pytest.fixture(scope="module")
def truth(small_dataset, bank_split):
    _, test = bank_split
    return {bank: small_dataset.bank_truth[bank].uer_row_sequence
            for bank in test
            if small_dataset.bank_truth[bank].uer_row_sequence}


def decisions_json(decisions):
    return json.dumps([d.to_obj() for d in decisions], sort_keys=True)


class TestKillRestoreEquivalence:
    @pytest.mark.parametrize("every_k", [23, 57])
    def test_periodic_kills_are_invisible(self, cordial, test_stream, truth,
                                          tmp_path, every_k):
        stream = test_stream[:180]
        baseline = CordialService(cordial, max_skew=3600.0)
        _, expect = serve_stream(baseline, stream)

        kill_points = list(range(every_k, len(stream) + 1, every_k))
        outcome = serve_with_faults(
            CordialService(cordial, max_skew=3600.0), stream, kill_points,
            str(tmp_path / "kr.ckpt"), rng(0))

        assert outcome.restore_count == len(kill_points)
        assert decisions_json(outcome.decisions) == decisions_json(expect)
        assert outcome.service.coverage(truth) == baseline.coverage(truth)
        assert outcome.service.stats.to_dict() == baseline.stats.to_dict()
        assert outcome.service.metrics.as_dict(include_histograms=False) \
            == baseline.metrics.as_dict(include_histograms=False)

    def test_kill_at_every_single_ingest(self, cordial, test_stream,
                                         tmp_path):
        # The brutal end of the spectrum: restart after *every* event.
        stream = test_stream[:40]
        baseline = CordialService(cordial, max_skew=3600.0)
        _, expect = serve_stream(baseline, stream)
        outcome = serve_with_faults(
            CordialService(cordial, max_skew=3600.0), stream,
            list(range(1, len(stream) + 1)), str(tmp_path / "kr.ckpt"),
            rng(0))
        assert outcome.restore_count == len(stream)
        assert decisions_json(outcome.decisions) == decisions_json(expect)


class TestTamperedCheckpointsAreRejected:
    @pytest.fixture()
    def checkpoint(self, cordial, test_stream, tmp_path):
        service = CordialService(cordial, max_skew=3600.0)
        serve_stream(service, test_stream[:80])
        path = str(tmp_path / "good.ckpt")
        save_service_checkpoint(service, path)
        return path

    @pytest.mark.parametrize("mode", TAMPER_MODES)
    def test_each_tamper_mode_raises_typed_error(self, checkpoint, mode):
        for seed in range(5):  # several random damage positions per mode
            damaged = tamper_checkpoint(checkpoint, mode, rng(seed))
            with pytest.raises(CheckpointCorruptionError):
                load_service_checkpoint(damaged)

    def test_garbage_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"\x00\xffnot json at all")
        with pytest.raises(CheckpointCorruptionError):
            load_service_checkpoint(path)

    def test_empty_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_text("")
        with pytest.raises(CheckpointCorruptionError):
            load_service_checkpoint(path)

    def test_wrong_document_kind_is_not_corruption(self, cordial, tmp_path):
        # A pipeline file is the wrong *kind* of document, not a damaged
        # checkpoint: plain ModelPersistenceError, so callers can tell
        # "fall back to an older checkpoint" from "wrong path".
        path = str(tmp_path / "pipeline.json")
        save_cordial(cordial, path)
        with pytest.raises(ModelPersistenceError) as excinfo:
            load_service_checkpoint(path)
        assert not isinstance(excinfo.value, CheckpointCorruptionError)

    def test_v2_checkpoint_missing_feature_state_is_corrupt(self,
                                                            checkpoint):
        with open(checkpoint, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["version"] >= 2
        del document["state"]["feature_state"]
        from repro.core.persistence import service_from_document
        with pytest.raises(CheckpointCorruptionError, match="feature_state"):
            service_from_document(document)


class TestFailedRestoreIsTransactional:
    def test_live_service_untouched_by_corrupt_state(self, cordial,
                                                     test_stream):
        service = CordialService(cordial, max_skew=3600.0)
        serve_stream(service, test_stream[:80])
        before = copy.deepcopy(service.state_dict())

        for sabotage in [
            lambda s: s.pop("collector"),
            lambda s: s.pop("stats"),
            lambda s: s.__setitem__("replay", {"spared_rows": "nope"}),
            lambda s: s.__setitem__("pattern_of", [["bad"]]),
            lambda s: s.__setitem__("metrics", {"counters": 7}),
        ]:
            state = copy.deepcopy(before)
            sabotage(state)
            with pytest.raises(Exception):
                service.load_state_dict(state)
            assert service.state_dict() == before

        # And the service still works after every failed restore.
        remaining = test_stream[80:100]
        for record in remaining:
            service.ingest(record)
        service.flush()
        assert service.stats.events_ingested == 100

    def test_corrupt_file_leaves_no_half_restored_service(self, cordial,
                                                          test_stream,
                                                          tmp_path):
        service = CordialService(cordial, max_skew=3600.0)
        serve_stream(service, test_stream[:60])
        path = str(tmp_path / "ckpt.json")
        save_service_checkpoint(service, path)
        damaged = tamper_checkpoint(path, "truncate", rng(1))
        with pytest.raises(CheckpointCorruptionError):
            load_service_checkpoint(damaged)
        # The good file still restores to an identical twin.
        restored = load_service_checkpoint(path)
        assert restored.state_dict() == service.state_dict()
