"""Tests for the experiment harness (result objects + the cheap runs).

The expensive model-training experiments (E3/E4) are covered by the
benchmark suite; here we run the analysis experiments on the shared small
fleet and unit-test every result object's logic on synthetic values.
"""

import pytest

from repro.experiments import fig3, fig4, table1, table2, table3, table4
from repro.experiments.common import ExperimentContext
from repro.experiments.runner import run_all


@pytest.fixture(scope="module")
def context(small_dataset):
    ctx = ExperimentContext(scale=small_dataset.config.scale,
                            seed=small_dataset.seed)
    ctx._dataset = small_dataset  # reuse the session fleet
    return ctx


class TestAnalysisExperiments:
    def test_table1_runs_and_formats(self, context):
        result = table1.run(context)
        assert set(result.rows) == {"NPU", "HBM", "SID", "PS-CH", "BG",
                                    "Bank", "Row"}
        assert result.is_monotone_decreasing()
        text = result.format()
        assert "Paper" in text and "Row" in text

    def test_table2_runs_and_formats(self, context):
        result = table2.run(context)
        assert result.max_relative_error(levels=("Bank", "Row")) < 0.4
        assert "measured/paper" in result.format()

    def test_fig3_runs_and_formats(self, context):
        result = fig3.run(context)
        assert 0.5 < result.distribution["Single-row Clustering"] < 0.9
        assert 0.6 < result.aggregation_share() < 0.95
        assert "Single-row" in result.format()
        assert "---" in result.format_examples()

    def test_fig4_runs_and_formats(self, context):
        result = fig4.run(context)
        assert result.curve.peak_threshold in (64, 128, 256)
        assert "peak" in result.format()

    def test_runner_fast_path(self, context):
        report = run_all(context, include_models=False,
                         include_examples=True)
        for marker in ("== E1", "== E2", "== E5/E6", "== E7"):
            assert marker in report
        assert "== E3" not in report


class TestResultObjects:
    def test_table3_helpers(self):
        scores = {
            model: {
                "Double-row Clustering": (0.6, 0.5, 0.55),
                "Single-row Clustering": (0.9, 0.95, 0.92),
                "Scattered Pattern": (0.7, 0.6, 0.65),
                "Weighted Average": (0.8, 0.8, weighted),
            }
            for model, weighted in (("LightGBM", 0.80),
                                    ("XGBoost", 0.78),
                                    ("Random Forest", 0.85))
        }
        result = table3.Table3Result(scores=scores,
                                     paper=table3.PAPER_TABLE3)
        assert result.best_model() == "Random Forest"
        assert result.weighted_f1("XGBoost") == 0.78
        assert result.single_row_is_best_classified("LightGBM")
        assert "Random Forest" in result.format()

    def test_table4_helpers(self):
        rows = {
            "Neighbor Rows": (0.3, 0.4, 0.35, 0.13),
            "Cordial-LGBM": (0.6, 0.5, 0.55, 0.18),
            "Cordial-XGB": (0.7, 0.5, 0.58, 0.19),
            "Cordial-RF": (0.8, 0.55, 0.65, 0.20),
        }
        from repro.datasets.config import CalibrationTargets
        result = table4.Table4Result(rows=rows,
                                     paper=CalibrationTargets().table4)
        assert result.cordial_beats_baseline()
        assert result.f1_improvement() == pytest.approx((0.65 - 0.35) / 0.35)
        assert result.icr_improvement() == pytest.approx((0.20 - 0.13) / 0.13)
        assert "Cordial-RF" in result.format()

    def test_table4_detects_baseline_win(self):
        rows = {
            "Neighbor Rows": (0.3, 0.4, 0.35, 0.25),
            "Cordial-LGBM": (0.6, 0.5, 0.55, 0.18),
            "Cordial-XGB": (0.7, 0.5, 0.58, 0.19),
            "Cordial-RF": (0.8, 0.55, 0.65, 0.20),
        }
        from repro.datasets.config import CalibrationTargets
        result = table4.Table4Result(rows=rows,
                                     paper=CalibrationTargets().table4)
        assert not result.cordial_beats_baseline()

    def test_table1_error_helpers(self, context):
        result = table1.run(context)
        assert 0 <= result.max_abs_error() <= 1
