"""Tests for both featurizers (pattern features and cross-row block features)."""

import numpy as np
import pytest

from repro.core.features import (MISSING, BankPatternFeaturizer,
                                 CrossRowFeaturizer, CrossRowWindow)
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType


def rec(seq, t, row, error_type):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


def history_with_three_uers():
    return [
        rec(0, 10.0, 100, ErrorType.CE),
        rec(1, 20.0, 140, ErrorType.UEO),
        rec(2, 30.0, 110, ErrorType.UER),
        rec(3, 40.0, 150, ErrorType.UER),
        rec(4, 50.0, 190, ErrorType.UER),
    ]


class TestBankPatternFeaturizer:
    def test_vector_length_matches_names(self):
        featurizer = BankPatternFeaturizer()
        vector = featurizer.extract(history_with_three_uers())
        assert vector.shape == (featurizer.n_features,)
        assert len(featurizer.feature_names()) == featurizer.n_features

    def test_named_values_hand_checked(self):
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        vector = featurizer.extract(history_with_three_uers())
        get = lambda n: vector[names.index(n)]
        assert get("uer_row_min") == 110
        assert get("uer_row_max") == 190
        assert get("uer_row_range") == 80
        assert get("uer_gap_small") == 40   # gaps 40, 40
        assert get("uer_gap_large") == 40
        assert get("uer_span") == 80
        assert get("ce_total") == 1
        assert get("ueo_total") == 1
        assert get("uer_events_total") == 3
        assert get("ce_before_first_uer") == 1
        assert get("ueo_before_first_uer") == 1
        assert get("uer_time_span") == 20.0
        assert get("trigger_to_last_error") == 10.0

    def test_missing_sentinels_without_ce(self):
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        history = [rec(i, 10.0 * (i + 1), 100 + i, ErrorType.UER)
                   for i in range(3)]
        vector = featurizer.extract(history)
        assert vector[names.index("ce_row_min")] == MISSING
        assert vector[names.index("ce_near_uer_min")] == MISSING
        assert vector[names.index("ce_before_first_uer")] == 0

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            BankPatternFeaturizer().extract([])

    def test_extract_many_stacks(self):
        featurizer = BankPatternFeaturizer()
        matrix = featurizer.extract_many([history_with_three_uers()] * 3)
        assert matrix.shape == (3, featurizer.n_features)

    def test_single_event_history_uses_missing_sentinels(self):
        """A one-record history has no pairs: every differential feature
        (time diffs, row diffs, trigger_to_last_error) must be MISSING,
        not a fabricated zero."""
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        vector = featurizer.extract([rec(0, 10.0, 100, ErrorType.UER)])
        get = lambda n: vector[names.index(n)]
        assert get("trigger_to_last_error") == MISSING
        for kind in ("ce", "ueo", "uer"):
            assert get(f"{kind}_timediff_min") == MISSING
            assert get(f"{kind}_timediff_max") == MISSING
        assert get("all_rowdiff_min") == MISSING
        assert get("uer_time_span") == MISSING
        assert get("uer_row_min") == 100
        assert get("events_total") == 1

    def test_uer_span_missing_below_two_distinct_rows(self):
        """uer_span falls back to MISSING — not 0.0 — when fewer than two
        distinct UER rows exist, so "no geometry" is distinguishable from
        a genuinely zero-width cluster of repeat UERs on one row."""
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        history = [rec(i, 10.0 * (i + 1), 100, ErrorType.UER)
                   for i in range(3)]  # three UERs, one distinct row
        vector = featurizer.extract(history)
        get = lambda n: vector[names.index(n)]
        assert get("uer_span") == MISSING
        assert get("uer_gap_small") == MISSING
        assert get("uer_gap_large") == MISSING
        assert get("uer_gap_ratio") == MISSING
        assert get("uer_events_total") == 3

    def test_two_distinct_rows_gap_ratio_formula(self):
        """The two-row branch uses the same g / (g + 1) ratio formula as
        the three-row branch, not a hardcoded 1.0."""
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        history = [rec(0, 10.0, 100, ErrorType.UER),
                   rec(1, 20.0, 150, ErrorType.UER)]
        vector = featurizer.extract(history)
        get = lambda n: vector[names.index(n)]
        assert get("uer_gap_small") == 50
        assert get("uer_gap_large") == 50
        assert get("uer_gap_ratio") == 50.0 / 51.0
        assert get("uer_span") == 50

    def test_duplicate_uer_rows_collapse_to_distinct(self):
        """Repeat UERs on already-seen rows do not fake a third distinct
        row: the geometry stays in the two-distinct-row branch."""
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        history = [rec(0, 10.0, 100, ErrorType.UER),
                   rec(1, 20.0, 150, ErrorType.UER),
                   rec(2, 30.0, 100, ErrorType.UER),
                   rec(3, 40.0, 150, ErrorType.UER)]
        vector = featurizer.extract(history)
        get = lambda n: vector[names.index(n)]
        assert get("uer_gap_ratio") == 50.0 / 51.0  # two-row formula
        assert get("uer_span") == 50
        assert get("uer_events_total") == 4

    def test_all_uer_history_zero_other_counts(self):
        featurizer = BankPatternFeaturizer()
        names = featurizer.feature_names()
        history = [rec(i, 10.0 * (i + 1), 100 + 10 * i, ErrorType.UER)
                   for i in range(4)]
        vector = featurizer.extract(history)
        get = lambda n: vector[names.index(n)]
        assert get("ce_total") == 0
        assert get("ueo_total") == 0
        assert get("ce_before_first_uer") == 0
        assert get("ueo_before_first_uer") == 0
        assert get("ce_row_min") == MISSING
        assert get("ce_near_uer_min") == MISSING
        assert get("uer_events_total") == 4


class TestCrossRowWindow:
    def test_paper_defaults(self):
        window = CrossRowWindow()
        assert window.half_window == 64
        assert window.block_rows == 8
        assert window.n_blocks == 16

    def test_block_ranges_tile_the_window(self):
        window = CrossRowWindow()
        last = 1000
        covered = []
        for block in range(window.n_blocks):
            start, end = window.block_range(last, block)
            covered.extend(range(start, end))
        assert covered == list(range(last - 64, last + 64))

    def test_block_of_row_roundtrip(self):
        window = CrossRowWindow()
        last = 5000
        for block in range(window.n_blocks):
            start, end = window.block_range(last, block)
            for row in (start, end - 1):
                assert window.block_of_row(last, row) == block

    def test_rows_outside_window(self):
        window = CrossRowWindow()
        assert window.block_of_row(1000, 1000 - 65) == -1
        assert window.block_of_row(1000, 1000 + 64) == -1

    def test_clipping_at_bank_edges(self):
        window = CrossRowWindow()
        start, end = window.block_range(10, 0, total_rows=32768)
        assert start == 0 and end == 0  # fully below the bank
        start, end = window.block_range(32760, 15, total_rows=32768)
        assert end == 32768

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CrossRowWindow(half_window=10, block_rows=3)
        with pytest.raises(ValueError):
            CrossRowWindow(half_window=0)


class TestCrossRowFeaturizer:
    def test_matrix_shape(self):
        featurizer = CrossRowFeaturizer()
        matrix = featurizer.extract_blocks(history_with_three_uers(), 190)
        assert matrix.shape == (16, featurizer.n_features)

    def test_block_counts_localised(self):
        featurizer = CrossRowFeaturizer()
        names = featurizer.feature_names()
        history = history_with_three_uers()
        matrix = featurizer.extract_blocks(history, 190)
        uer_col = names.index("block_uer_count")
        window = featurizer.window
        # UER at row 150 lies in the block containing 150
        block_150 = window.block_of_row(190, 150)
        assert matrix[block_150, uer_col] >= 1
        # blocks far below hold no UERs
        assert matrix[0, uer_col] == 0

    def test_forward_step_feature(self):
        featurizer = CrossRowFeaturizer()
        names = featurizer.feature_names()
        matrix = featurizer.extract_blocks(history_with_three_uers(), 190)
        fwd = matrix[:, names.index("dist_to_forward_step")]
        # last step = 190-150 = +40; forecast row = 230; its block center
        # is within 4 rows of 230
        window = featurizer.window
        block_230 = window.block_of_row(190, 230)
        assert fwd[block_230] == fwd.min()
        assert fwd[block_230] <= 4

    def test_step_regularity_zero_for_even_walk(self):
        featurizer = CrossRowFeaturizer()
        names = featurizer.feature_names()
        matrix = featurizer.extract_blocks(history_with_three_uers(), 190)
        assert (matrix[:, names.index("step_regularity")] == 0).all()
        assert (matrix[:, names.index("steps_same_direction")] == 1).all()

    def test_labels_from_future_rows(self):
        featurizer = CrossRowFeaturizer()
        future = [(60.0, 230), (70.0, 9999), (45.0, 130)]
        labels = featurizer.block_labels(190, trigger_time=50.0,
                                         future_uer_rows=future)
        window = featurizer.window
        assert labels[window.block_of_row(190, 230)]
        # row 9999 outside window, row 130 not after trigger
        assert labels.sum() == 1

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            CrossRowFeaturizer().extract_blocks([], 100)
