"""Tests for the observational pattern labeller."""

import pytest

from repro.core.patterns import cluster_rows, label_bank_pattern
from repro.faults.types import FailurePattern, FaultType


class TestClusterRows:
    def test_single_cluster(self):
        assert cluster_rows([5, 10, 12]) == [(5, 12, 3)]

    def test_two_clusters(self):
        clusters = cluster_rows([5, 10, 5000, 5010], gap_threshold=512)
        assert clusters == [(5, 10, 2), (5000, 5010, 2)]

    def test_empty(self):
        assert cluster_rows([]) == []

    def test_unsorted_input(self):
        assert cluster_rows([12, 5, 10]) == [(5, 12, 3)]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            cluster_rows([1], gap_threshold=0)


class TestLabelBankPattern:
    def test_single_row_clustering(self):
        rows = [1000, 1040, 1080, 1120, 1010]
        assert label_bank_pattern(rows) is FailurePattern.SINGLE_ROW

    def test_double_row_clustering(self):
        rows = [1000, 1050, 1100, 5000, 5060]
        assert label_bank_pattern(rows) is FailurePattern.DOUBLE_ROW

    def test_half_total_is_double(self):
        rows = [100, 150, 16484, 16534]
        assert label_bank_pattern(rows) is FailurePattern.DOUBLE_ROW

    def test_scattered(self):
        rows = [100, 8000, 16000, 24000, 31000]
        assert label_bank_pattern(rows) is FailurePattern.SCATTERED

    def test_whole_column_is_scattered(self):
        rows = [100, 8000, 16000, 24000, 31000]
        columns = [7, 7, 7, 7, 7]
        assert label_bank_pattern(rows, columns) is FailurePattern.SCATTERED

    def test_outlier_tolerated(self):
        # 10 clustered rows + 1 stray should still be single-row
        rows = list(range(1000, 1100, 10)) + [30000]
        assert label_bank_pattern(rows) is FailurePattern.SINGLE_ROW

    def test_wide_single_cluster_is_scattered(self):
        rows = [0, 400, 800, 1200, 1600, 2000]
        assert label_bank_pattern(rows) is FailurePattern.SCATTERED

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            label_bank_pattern([])

    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            label_bank_pattern([1, 2, 3, 4, 5], [1, 2])

    def test_agrees_with_generator_ground_truth(self, small_dataset):
        """The observational labeller recovers the planted pattern for a
        clear majority of banks with enough UER rows."""
        agree = total = 0
        for bank_key, truth in small_dataset.bank_truth.items():
            if truth.fault_type is FaultType.CELL_FAULT:
                continue
            rows = [row for _, row in truth.uer_row_sequence]
            if len(rows) < 4:
                continue
            events = small_dataset.store.uer_rows_of_bank(bank_key)
            columns = [r.column for r in events]
            label = label_bank_pattern(rows, columns)
            total += 1
            agree += label is truth.pattern
        assert total > 20
        assert agree / total > 0.7
