"""Tests for Cordial's configuration options (one-shot mode, fixed
threshold, custom windows and triggers)."""

import pytest

from repro.core.features import CrossRowWindow
from repro.core.pipeline import Cordial


class TestRepredictionOption:
    def test_reprediction_never_hurts_icr(self, small_dataset, bank_split):
        train, test = bank_split
        one_shot = Cordial(model_name="LightGBM", repredict_each_uer=False,
                           random_state=0)
        one_shot.fit(small_dataset, train)
        continuous = Cordial(model_name="LightGBM",
                             repredict_each_uer=True, random_state=0)
        continuous.fit(small_dataset, train)
        icr_once = one_shot.evaluate(small_dataset, test).icr
        icr_cont = continuous.evaluate(small_dataset, test).icr
        assert icr_cont.icr >= icr_once.icr - 0.01
        # re-prediction can only spend more rows
        assert icr_cont.spared_rows >= icr_once.spared_rows


class TestFixedThreshold:
    def test_extreme_threshold_flags_nothing(self, small_dataset,
                                             bank_split):
        train, test = bank_split
        model = Cordial(model_name="LightGBM", threshold=0.99,
                        repredict_each_uer=False, random_state=0)
        model.fit(small_dataset, train)
        assert model.predictor.effective_threshold == 0.99
        evaluation = model.evaluate(small_dataset, test)
        # almost nothing flagged -> recall collapses, bank sparing remains
        assert evaluation.block_scores.recall <= 0.2

    def test_low_threshold_floods(self, small_dataset, bank_split):
        train, test = bank_split
        eager = Cordial(model_name="LightGBM", threshold=0.05,
                        repredict_each_uer=False, random_state=0)
        eager.fit(small_dataset, train)
        strict = Cordial(model_name="LightGBM", threshold=0.9,
                         repredict_each_uer=False, random_state=0)
        strict.fit(small_dataset, train)
        rows_eager = eager.evaluate(small_dataset, test).icr.spared_rows
        rows_strict = strict.evaluate(small_dataset, test).icr.spared_rows
        assert rows_eager >= rows_strict


class TestWindowAndTrigger:
    def test_custom_window_changes_block_count(self, small_dataset,
                                               bank_split):
        train, _ = bank_split
        model = Cordial(model_name="LightGBM",
                        window=CrossRowWindow(half_window=32, block_rows=8),
                        random_state=0)
        model.fit(small_dataset, train)
        assert model.predictor.window.n_blocks == 8

    def test_trigger_two_triggers_more_banks(self, small_dataset,
                                             bank_split):
        from repro.core.pipeline import collect_triggers
        banks = small_dataset.uer_banks
        assert (len(collect_triggers(small_dataset, banks, 2))
                >= len(collect_triggers(small_dataset, banks, 3)))

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            Cordial(threshold=1.5)
