"""Unit contracts of the observability layer (``repro.obs``).

Four pillars, four test groups:

* the span tracer is *byte-deterministic* under a fake clock and
  memory-bounded under a real one;
* the run journal carries a provenance header that round-trips, and its
  sampled markers never lose the exact counts;
* the audit trail answers "why was this row spared" and survives its
  own JSONL and state-dict round-trips;
* the Prometheus exposition is format-correct down to label escaping
  and non-finite values.
"""

import json
import math

import pytest

from repro.obs import (AUDIT_FILE, JOURNAL_FILE, SUMMARY_FILE, TRACE_FILE,
                       AuditLog, FakeClock, Observability, RunJournal,
                       SpanTracer, build_provenance, read_journal,
                       render_prometheus, resolve_clock, snapshot_delta)
from repro.obs.promexport import (escape_label_value, format_value,
                                  parse_series_key, sanitize_name)
from repro.obs.tracer import FAKE_CLOCK_ENV
from repro.telemetry.metrics import MetricsRegistry


class TestFakeClock:
    def test_advances_fixed_step_per_read(self):
        clock = FakeClock(step=0.5, start=10.0)
        assert clock() == 10.5
        assert clock() == 11.0

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            FakeClock(step=0.0)

    def test_resolve_prefers_explicit_clock(self, monkeypatch):
        monkeypatch.setenv(FAKE_CLOCK_ENV, "1")
        explicit = FakeClock()
        assert resolve_clock(explicit) is explicit

    def test_resolve_env_sets_step(self, monkeypatch):
        monkeypatch.setenv(FAKE_CLOCK_ENV, "0.25")
        clock = resolve_clock(None)
        assert isinstance(clock, FakeClock)
        assert clock.step == 0.25

    def test_resolve_unset_is_wall_clock(self, monkeypatch):
        import time

        monkeypatch.delenv(FAKE_CLOCK_ENV, raising=False)
        assert resolve_clock(None) is time.perf_counter


class TestSpanTracer:
    def _run_workload(self, tracer):
        with tracer.span("outer", bank=3):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass

    def test_fake_clock_traces_are_byte_identical(self):
        exports = []
        for _ in range(2):
            tracer = SpanTracer(clock=FakeClock())
            self._run_workload(tracer)
            exports.append(json.dumps(tracer.export_chrome(),
                                      sort_keys=True))
        assert exports[0] == exports[1]

    def test_nesting_depth_recorded(self):
        tracer = SpanTracer(clock=FakeClock())
        self._run_workload(tracer)
        by_name = {(s.name, s.depth) for s in tracer.spans}
        assert by_name == {("outer", 0), ("inner", 1)}

    def test_exception_still_closes_span(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tracer.spans] == ["boom"]
        # Depth is restored: the next span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tracer = SpanTracer(clock=FakeClock(), max_spans=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 4
        assert tracer.spans_started == 10
        assert tracer.spans_dropped == 6
        assert [s.name for s in tracer.spans] == ["s6", "s7", "s8", "s9"]

    def test_durations_flow_into_metrics(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(clock=FakeClock(), metrics=registry)
        self._run_workload(tracer)
        inner = registry.histogram("trace.span_seconds",
                                   labels={"span": "inner"})
        assert inner.count == 2

    def test_chrome_export_is_relative_to_earliest_span(self):
        tracer = SpanTracer(clock=FakeClock(step=1.0, start=100.0))
        self._run_workload(tracer)
        events = tracer.export_chrome()
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["ph"] == "X" for e in events)
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"] == {"bank": 3}

    def test_durations_into_backfills_registry(self):
        tracer = SpanTracer(clock=FakeClock())
        self._run_workload(tracer)
        registry = MetricsRegistry()
        tracer.durations_into(registry)
        outer = registry.histogram("trace.span_seconds",
                                   labels={"span": "outer"})
        assert outer.count == 1


class TestRunJournal:
    def test_provenance_header_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        provenance = build_provenance(seeds={"generator": 42},
                                      config={"scale": 0.1, "model": "LGB"})
        journal = RunJournal(path=path, clock=FakeClock(),
                             provenance=provenance)
        journal.trigger((0, 1), 5.0, "pitch-walking", (7, 8, 9))
        journal.close()
        header, events = read_journal(path)
        assert header["format"] == "cordial-run-journal"
        assert header["provenance"] == provenance
        assert header["provenance"]["seeds"] == {"generator": 42}
        assert len(header["provenance"]["config_digest"]) == 64
        assert [e["type"] for e in events] == ["trigger"]
        assert events[0]["uer_rows"] == [7, 8, 9]

    def test_config_digest_tracks_config(self):
        a = build_provenance(config={"scale": 0.1})
        b = build_provenance(config={"scale": 0.1})
        c = build_provenance(config={"scale": 0.2})
        assert a["config_digest"] == b["config_digest"]
        assert a["config_digest"] != c["config_digest"]

    def test_fake_clock_journal_is_byte_identical(self, tmp_path):
        texts = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            journal = RunJournal(path=path, clock=FakeClock(),
                                 provenance={"git_sha": None},
                                 sample_every=2)
            for index in range(6):
                journal.ingest(float(index), index, pending=0)
            journal.quarantine("late", "displaced", timestamp=3.0)
            journal.close()
            texts.append(path.read_text())
        assert texts[0] == texts[1]

    def test_sampling_thins_markers_but_counts_stay_exact(self):
        journal = RunJournal(clock=FakeClock(), sample_every=100)
        for index in range(250):
            journal.ingest(float(index), index, pending=0)
            journal.release(float(index), index)
        summary = journal.summary()
        assert summary["ingests_seen"] == 250
        assert summary["releases_seen"] == 250
        assert summary["counts_by_type"] == {"ingest": 2, "release": 2}

    def test_sample_every_zero_disables_markers(self):
        journal = RunJournal(clock=FakeClock(), sample_every=0)
        journal.ingest(1.0, 0, pending=0)
        assert journal.summary()["counts_by_type"] == {}
        assert journal.summary()["ingests_seen"] == 1

    def test_quarantine_always_journalled(self):
        journal = RunJournal(clock=FakeClock(), sample_every=1000)
        for _ in range(3):
            journal.quarantine("malformed", "negative row")
        assert journal.summary()["counts_by_type"] == {"quarantine": 3}

    def test_read_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a run journal"):
            read_journal(path)
        (tmp_path / "empty.jsonl").write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_journal(tmp_path / "empty.jsonl")

    def test_in_memory_journal_needs_no_file(self):
        journal = RunJournal(clock=FakeClock())
        journal.checkpoint("save", at_event=10)
        assert journal.events[0]["kind"] == "save"
        journal.close()  # idempotent, no file behind it


class TestAuditLog:
    def _record(self, log, bank=(0, 1), rows=(5, 6), kind="trigger"):
        import numpy as np

        return log.record_decision(
            kind=kind, timestamp=1.0, bank_key=bank, action="row-spare",
            pattern="pitch-walking", threshold=0.5,
            probabilities=np.array([0.9, 0.1]),
            flagged=np.array([True, False]),
            block_ranges=((5, 7), (7, 9)),
            features=np.array([[1.0, 2.0], [3.0, 4.0]]),
            rows_requested=rows, newly_spared=len(rows),
            budget_before=64, budget_after=64 - len(rows))

    def test_explain_finds_row_and_bank_decisions(self):
        log = AuditLog(feature_names=("f0", "f1"))
        self._record(log, rows=(5, 6))
        log.record_decision(kind="trigger", timestamp=2.0, bank_key=(0, 1),
                            action="bank-spare", pattern="scattered")
        by_row = log.explain((0, 1), 5)
        assert [r["kind"] for r in by_row] == ["trigger", "trigger"]
        assert [r["action"] for r in by_row] == ["row-spare", "bank-spare"]
        assert log.explain((0, 1), 999) == [
            log.records[1]]  # bank-spare covers every row
        assert log.explain((9, 9), 5) == []

    def test_records_are_json_ready(self):
        log = AuditLog()
        record = self._record(log)
        reloaded = json.loads(json.dumps(record))
        assert reloaded["flagged_blocks"] == [0]
        assert reloaded["probabilities"] == [0.9, 0.1]
        assert reloaded["features"] == [[1.0, 2.0], [3.0, 4.0]]

    def test_state_dict_round_trip_preserves_queries(self):
        log = AuditLog(feature_names=("f0", "f1"))
        self._record(log)
        restored = AuditLog().load_state_dict(
            json.loads(json.dumps(log.state_dict())))
        assert restored.records == log.records
        assert ([r["index"] for r in restored.explain((0, 1), 5)]
                == [r["index"] for r in log.explain((0, 1), 5)])

    def test_jsonl_round_trip(self, tmp_path):
        log = AuditLog(feature_names=("f0", "f1"))
        self._record(log)
        self._record(log, bank=(2, 3), rows=(8,), kind="reprediction")
        path = tmp_path / "audit.jsonl"
        assert log.write_jsonl(path) == 2
        back = AuditLog.read_jsonl(path)
        assert back.feature_names == ["f0", "f1"]
        assert back.records == log.records

    def test_summary_counts(self):
        log = AuditLog()
        self._record(log)
        self._record(log, kind="reprediction")
        assert log.summary() == {
            "records": 2,
            "by_kind": {"reprediction": 1, "trigger": 1},
            "by_action": {"row-spare": 2}}


class TestPrometheusFormat:
    def test_name_sanitization(self):
        assert sanitize_name("service.ingest_seconds") == \
            "service_ingest_seconds"
        assert sanitize_name("9lives") == "_9lives"
        assert sanitize_name("a-b c") == "a_b_c"

    def test_label_value_escaping(self):
        assert escape_label_value('say "hi"\n\\end') == \
            'say \\"hi\\"\\n\\\\end'

    def test_nonfinite_values(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"

    def test_series_key_parsing(self):
        assert parse_series_key("plain") == ("plain", {})
        assert parse_series_key("d{reason=late,zone=a}") == \
            ("d", {"reason": "late", "zone": "a"})

    def test_full_render(self):
        registry = MetricsRegistry()
        registry.counter("collector.events_released").inc(7)
        registry.counter("collector.dead_letters",
                         labels={"reason": "late"}).inc(2)
        registry.gauge("collector.pending").set(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE cordial_collector_events_released counter" in lines
        assert "cordial_collector_events_released 7" in lines
        assert 'cordial_collector_dead_letters{reason="late"} 2' in lines
        assert "# TYPE cordial_collector_pending gauge" in lines
        assert "cordial_collector_pending_max 3" in lines
        assert 'cordial_lat_bucket{le="0.1"} 1' in lines
        assert 'cordial_lat_bucket{le="1"} 2' in lines
        assert 'cordial_lat_bucket{le="+Inf"} 2' in lines
        assert "cordial_lat_count 2" in lines
        assert text.endswith("\n")

    def test_gauge_with_nonfinite_value_renders(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(float("nan"))
        text = render_prometheus(registry)
        assert "cordial_weird NaN" in text

    def test_version1_document_derives_cumulative(self):
        document = {"counters": {}, "gauges": {},
                    "histograms": {"lat": {"buckets": [1.0],
                                           "counts": [2, 1],
                                           "sum": 3.5, "count": 3}}}
        text = render_prometheus(document)
        assert 'cordial_lat_bucket{le="1"} 2' in text
        assert 'cordial_lat_bucket{le="+Inf"} 3' in text

    def test_snapshot_delta_attributes_movement(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("quiet").inc()
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        before = registry.as_dict()
        registry.counter("a").inc(3)
        registry.gauge("depth").set(9)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        delta = snapshot_delta(before, registry.as_dict())
        assert delta["counters"] == {"a": 3.0}
        assert "quiet" not in delta["counters"]
        assert delta["gauges"]["depth"]["value"] == 9
        assert delta["histograms"]["lat"]["count"] == 1


class TestObservabilityBundle:
    def test_create_and_export_writes_every_artifact(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events").inc(4)
        obs = Observability.create(tmp_path / "obs", metrics=registry,
                                   provenance={"git_sha": None},
                                   clock=FakeClock())
        with obs.tracer.span("work"):
            obs.journal.trigger((0,), 1.0, "scattered", (1, 2, 3))
        paths = obs.export(tmp_path / "obs", metrics=registry)
        for name in (TRACE_FILE, JOURNAL_FILE, AUDIT_FILE, SUMMARY_FILE,
                     "metrics.json", "metrics.prom"):
            assert (tmp_path / "obs" / name).exists(), name
        assert set(paths) == {"trace", "journal", "audit", "summary",
                              "metrics", "prom"}
        summary = json.loads((tmp_path / "obs" / SUMMARY_FILE).read_text())
        assert summary["journal"]["counts_by_type"] == {"trigger": 1}
        assert summary["trace"]["by_name"]["work"]["count"] == 1

    def test_state_dict_is_audit_only(self):
        obs = Observability(tracer=SpanTracer(clock=FakeClock()))
        with obs.tracer.span("not-checkpointed"):
            pass
        obs.journal.checkpoint("save", at_event=1)
        assert set(obs.state_dict()) == {"audit"}

    def test_journal_shares_tracer_clock_by_default(self):
        obs = Observability(tracer=SpanTracer(clock=FakeClock()))
        assert obs.journal.clock is obs.tracer.clock
