"""Tests for model and pipeline persistence (JSON, no pickle)."""

import json

import numpy as np
import pytest

from repro.core.persistence import load_cordial, save_cordial
from repro.core.pipeline import Cordial, collect_triggers
from repro.ml import (LGBMClassifier, RandomForestClassifier, XGBClassifier)
from repro.ml.persist import ModelPersistenceError, dump_model, load_model


def small_data(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(250, 4))
    y = (X[:, 0] - X[:, 2] > 0).astype(int)
    return X, y


@pytest.mark.parametrize("factory", [
    lambda: RandomForestClassifier(n_estimators=8, random_state=0),
    lambda: XGBClassifier(n_estimators=8, random_state=0),
    lambda: LGBMClassifier(n_estimators=8, random_state=0),
])
class TestModelRoundtrip:
    def test_probabilities_identical(self, factory, tmp_path):
        X, y = small_data()
        model = factory().fit(X, y)
        path = tmp_path / "model.json"
        dump_model(model, path)
        loaded = load_model(path)
        Xt, _ = small_data(seed=1)
        assert np.allclose(model.predict_proba(Xt),
                           loaded.predict_proba(Xt))
        assert (model.predict(Xt) == loaded.predict(Xt)).all()

    def test_string_classes_roundtrip(self, factory, tmp_path):
        X, y = small_data()
        labels = np.where(y == 1, "bad", "good")
        model = factory().fit(X, labels)
        path = tmp_path / "model.json"
        dump_model(model, path)
        loaded = load_model(path)
        assert set(loaded.classes_) == {"bad", "good"}

    def test_document_is_plain_json(self, factory, tmp_path):
        X, y = small_data()
        path = tmp_path / "model.json"
        dump_model(factory().fit(X, y), path)
        document = json.loads(path.read_text())
        assert document["format"] == "cordial-ml-model"

    def test_unfitted_rejected(self, factory, tmp_path):
        with pytest.raises(ModelPersistenceError):
            dump_model(factory(), tmp_path / "model.json")


class TestModelErrors:
    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(ModelPersistenceError):
            dump_model(object(), tmp_path / "m.json")

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json at all")
        with pytest.raises(ModelPersistenceError):
            load_model(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"format": "something"}))
        with pytest.raises(ModelPersistenceError):
            load_model(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"format": "cordial-ml-model",
                                    "version": 999}))
        with pytest.raises(ModelPersistenceError):
            load_model(path)


class TestCordialRoundtrip:
    @pytest.fixture(scope="class")
    def fitted(self, small_dataset, bank_split):
        train, _ = bank_split
        model = Cordial(model_name="LightGBM", random_state=0)
        model.fit(small_dataset, train)
        return model

    def test_evaluation_identical(self, fitted, small_dataset, bank_split,
                                  tmp_path):
        _, test = bank_split
        path = tmp_path / "pipeline.json"
        save_cordial(fitted, path)
        loaded = load_cordial(path)
        original = fitted.evaluate(small_dataset, test)
        reloaded = loaded.evaluate(small_dataset, test)
        assert reloaded.pattern_weighted.f1 == pytest.approx(
            original.pattern_weighted.f1)
        assert reloaded.block_scores.f1 == pytest.approx(
            original.block_scores.f1)
        assert reloaded.icr.icr == pytest.approx(original.icr.icr)

    def test_config_preserved(self, fitted, tmp_path):
        path = tmp_path / "pipeline.json"
        save_cordial(fitted, path)
        loaded = load_cordial(path)
        assert loaded.model_name == fitted.model_name
        assert loaded.trigger_uer_rows == fitted.trigger_uer_rows
        assert (loaded.predictor.effective_threshold
                == fitted.predictor.effective_threshold)
        assert loaded.predictor.window == fitted.predictor.window

    def test_predictions_identical(self, fitted, small_dataset, bank_split,
                                   tmp_path):
        _, test = bank_split
        path = tmp_path / "pipeline.json"
        save_cordial(fitted, path)
        loaded = load_cordial(path)
        trigger = collect_triggers(small_dataset, test)[0]
        a = fitted.predictor.predict(trigger.history, trigger.uer_rows[-1])
        b = loaded.predictor.predict(trigger.history, trigger.uer_rows[-1])
        assert np.allclose(a.probabilities, b.probabilities)
        assert (a.flagged == b.flagged).all()

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ModelPersistenceError):
            save_cordial(Cordial(), tmp_path / "p.json")
