"""Tests for the physical-address codec."""

import pytest
from hypothesis import given, strategies as st

from repro.hbm.addressmap import (FIELDS, AddressLayout, AddressMapper,
                                  default_hbm2e_mapper)
from repro.hbm.geometry import HBMGeometry

coordinate_strategy = st.fixed_dictionaries({
    "column": st.integers(0, 127),
    "channel": st.integers(0, 7),
    "pseudo_channel": st.integers(0, 1),
    "bank_group": st.integers(0, 3),
    "bank": st.integers(0, 3),
    "sid": st.integers(0, 1),
    "row": st.integers(0, 32767),
})


class TestLayout:
    def test_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            AddressLayout(order=("row", "row", "column", "channel",
                                 "pseudo_channel", "bank_group", "bank"))

    def test_address_bits_total(self):
        mapper = AddressMapper()
        # 7 col + 3 ch + 1 psch + 2 bg + 2 bank + 1 sid + 15 row = 31
        assert mapper.address_bits == 31


class TestRoundtrip:
    @given(coordinate_strategy)
    def test_encode_decode_identity(self, coordinate):
        mapper = AddressMapper()
        assert mapper.decode(mapper.encode(coordinate)) == coordinate

    @given(coordinate_strategy)
    def test_roundtrip_with_bank_hash(self, coordinate):
        mapper = default_hbm2e_mapper()
        assert mapper.decode(mapper.encode(coordinate)) == coordinate

    @given(coordinate_strategy, coordinate_strategy)
    def test_distinct_coordinates_distinct_addresses(self, a, b):
        mapper = default_hbm2e_mapper()
        if a != b:
            assert mapper.encode(a) != mapper.encode(b)


class TestSemantics:
    def test_channel_interleaves_low(self):
        """Consecutive column+channel increments stay below the row
        stride — the interleaving property the layout encodes."""
        mapper = AddressMapper()
        base = {name: 0 for name in FIELDS}
        a0 = mapper.encode(base)
        a1 = mapper.encode({**base, "channel": 1})
        assert abs(a1 - a0) < mapper.row_stride()

    def test_row_stride(self):
        mapper = AddressMapper()
        base = {name: 0 for name in FIELDS}
        next_row = mapper.encode({**base, "row": 1})
        assert next_row - mapper.encode(base) == mapper.row_stride()

    def test_bank_hash_spreads_consecutive_rows(self):
        """With bank hashing, the *stored* bank bits differ across rows,
        but decode still recovers the true bank."""
        mapper = default_hbm2e_mapper()
        base = {name: 0 for name in FIELDS}
        raw_banks = set()
        for row in range(4):
            address = mapper.encode({**base, "row": row})
            stored_bank = (address >> mapper._offsets["bank"]) & 0b11
            raw_banks.add(stored_bank)
            assert mapper.decode(address)["bank"] == 0
        assert len(raw_banks) > 1

    def test_neighbours_in_address_space(self):
        mapper = default_hbm2e_mapper()
        base = {name: 3 if name != "row" else 1000 for name in FIELDS}
        base["pseudo_channel"] = 1
        base["sid"] = 0
        base["bank"] = 2
        address = mapper.encode(base)
        neighbour = mapper.neighbours_in_address_space(address, row_delta=5)
        decoded = mapper.decode(neighbour)
        assert decoded["row"] == 1005
        assert decoded["bank"] == base["bank"]

    def test_neighbour_outside_bank_rejected(self):
        mapper = AddressMapper()
        base = {name: 0 for name in FIELDS}
        with pytest.raises(ValueError):
            mapper.neighbours_in_address_space(mapper.encode(base), -1)


class TestValidation:
    def test_out_of_range_field(self):
        mapper = AddressMapper()
        base = {name: 0 for name in FIELDS}
        with pytest.raises(ValueError):
            mapper.encode({**base, "row": 32768})

    def test_missing_field(self):
        with pytest.raises(ValueError):
            AddressMapper().encode({"row": 0})

    def test_decode_out_of_range(self):
        mapper = AddressMapper()
        with pytest.raises(ValueError):
            mapper.decode(1 << mapper.address_bits)

    def test_non_power_of_two_geometry_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(geometry=HBMGeometry(rows=1000))

    def test_bad_hash_spec(self):
        with pytest.raises(ValueError):
            AddressMapper(layout=AddressLayout(bank_xor_row_bits=(0,)))
        with pytest.raises(ValueError):
            AddressMapper(layout=AddressLayout(bank_xor_row_bits=(0, 99)))
