"""Tests for the online service and the cost model."""

import pytest

from repro.core.costmodel import (CostParams, block_hit_rate_effect,
                                  price_result, recommend_mechanism)
from repro.core.isolation import ICRResult
from repro.core.online import CordialService
from repro.core.pipeline import Cordial
from repro.telemetry.events import ErrorType


class TestCostModel:
    def test_price_result_hand_example(self):
        result = ICRResult(covered_rows=10, total_rows=40,
                           covered_by_bank_sparing=4, spared_rows=100,
                           spared_banks=2)
        params = CostParams(cost_per_spared_row=1.0,
                            cost_per_spared_bank=400.0,
                            cost_per_uer_hit=250.0)
        cost = price_result(result, params)
        assert cost.isolation_cost == 100 + 800
        assert cost.failure_cost == 30 * 250
        assert cost.avoided_failure_cost == 10 * 250
        assert cost.total_cost == 900 + 7500
        assert cost.net_benefit == 2500 - 900

    def test_recommend_row_sparing_for_predictable_clusters(self):
        assert recommend_mechanism(expected_future_uer_rows=2.0,
                                   block_hit_rate=0.6) == "row-sparing"

    def test_recommend_bank_sparing_for_scattered(self):
        assert recommend_mechanism(expected_future_uer_rows=8.0,
                                   block_hit_rate=0.05) == "bank-sparing"

    def test_zero_hit_rate_is_bank_sparing(self):
        assert recommend_mechanism(5.0, 0.0) == "bank-sparing"

    def test_budget_forces_bank_sparing(self):
        params = CostParams(spare_rows_per_bank=8)
        assert recommend_mechanism(5.0, 0.5, params) == "bank-sparing"

    def test_hit_rate_effect_bounds(self):
        assert block_hit_rate_effect(0.0) == 0.0
        assert block_hit_rate_effect(1.0) == 1.0
        assert 0.0 < block_hit_rate_effect(0.5) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostParams(cost_per_uer_hit=-1)
        with pytest.raises(ValueError):
            recommend_mechanism(-1.0, 0.5)
        with pytest.raises(ValueError):
            recommend_mechanism(1.0, 1.5)
        with pytest.raises(ValueError):
            block_hit_rate_effect(-0.1)


@pytest.fixture(scope="module")
def service(small_dataset, bank_split):
    train, _ = bank_split
    cordial = Cordial(model_name="LightGBM", random_state=0)
    cordial.fit(small_dataset, train)
    return cordial


class TestCordialService:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError):
            CordialService(Cordial())

    def test_stream_produces_decisions(self, small_dataset, bank_split,
                                       service):
        _, test = bank_split
        test_set = set(test)
        online = CordialService(service)
        decisions = []
        for record in small_dataset.store:
            if record.bank_key in test_set:
                decisions.extend(online.ingest(record))
        assert decisions
        assert online.stats.triggers_fired > 0
        assert online.stats.events_ingested > 0
        actions = {d.action for d in decisions}
        assert actions <= {"row-spare", "bank-spare"}

    def test_matches_batch_icr(self, small_dataset, bank_split, service):
        """The streaming service reproduces the batch replay's ICR."""
        _, test = bank_split
        test_set = set(test)
        online = CordialService(service)
        for record in small_dataset.store:
            if record.bank_key in test_set:
                online.ingest(record)
        truth = {bank: small_dataset.bank_truth[bank].uer_row_sequence
                 for bank in test
                 if small_dataset.bank_truth[bank].uer_row_sequence}
        batch = service.evaluate(small_dataset, test)
        assert online.coverage(truth) == pytest.approx(batch.icr.icr,
                                                       abs=0.02)

    def test_repredictions_follow_triggers(self, small_dataset, bank_split,
                                           service):
        _, test = bank_split
        test_set = set(test)
        online = CordialService(service)
        for record in small_dataset.store:
            if record.bank_key in test_set:
                online.ingest(record)
        if online.stats.repredictions:
            assert online.stats.triggers_fired > 0

    def test_bank_spare_decision_isolates(self, small_dataset, bank_split,
                                          service):
        _, test = bank_split
        test_set = set(test)
        online = CordialService(service)
        bank_spared = None
        for record in small_dataset.store:
            if record.bank_key not in test_set:
                continue
            for decision in online.ingest(record):
                if decision.action == "bank-spare":
                    bank_spared = decision.bank_key
        if bank_spared is not None:
            assert online.is_row_isolated(bank_spared, 0)
            assert online.spared_banks >= 1

    def test_bank_spare_retains_no_per_bank_state(self, small_dataset,
                                                  bank_split, service):
        """Regression: bank-spared banks must not grow reprediction state."""
        _, test = bank_split
        test_set = set(test)
        online = CordialService(service)
        decisions = []
        for record in small_dataset.store:
            if record.bank_key in test_set:
                decisions.extend(online.ingest(record))
        bank_spares = [d.bank_key for d in decisions
                       if d.action == "bank-spare"]
        row_spares = [d.bank_key for d in decisions
                      if d.action == "row-spare" and not d.is_reprediction]
        for bank_key in bank_spares:
            assert not online.has_bank_state(bank_key)
        for bank_key in row_spares:
            assert online.has_bank_state(bank_key)

    def test_is_row_isolated_respects_time(self, small_dataset, bank_split,
                                           service):
        _, test = bank_split
        online = CordialService(service)
        bank_key = test[0]
        online.replay.isolate_rows(bank_key, [7], timestamp=10.0)
        assert online.is_row_isolated(bank_key, 7)
        assert online.is_row_isolated(bank_key, 7, at_time=11.0)
        # Before (or at) the sparing instant the row was still exposed.
        assert not online.is_row_isolated(bank_key, 7, at_time=10.0)
        assert not online.is_row_isolated(bank_key, 7, at_time=9.0)
