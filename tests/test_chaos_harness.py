"""Property and acceptance tests of the chaos harness.

Three layers:

* operator unit tests — each perturbation is deterministic, conserving
  (or exactly accounting for) the stream it transforms;
* oracle negative tests — a deliberately injected violation (spare-budget
  overcommit, metrics tampering, undetected checkpoint tamper, unbounded
  divergence) is caught and named;
* campaign acceptance — the house plan (all six operators, kill/restore
  faults, checkpoint tampering) over a fixed seed passes every invariant
  and reruns byte-identically, and so do campaigns across a range of
  seeds.
"""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.chaos import (CampaignConfig, ChaosPlan, InvariantOracle,
                         OPERATORS, OperatorSpec, apply_operator,
                         default_plan, is_error_record, serve_with_faults)
from repro.chaos.campaign import decisions_digest, run_campaign
from repro.chaos.operators import (op_burst, op_clock_jitter, op_corrupt,
                                   op_drop, op_duplicate, op_reorder)
from repro.chaos.oracle import CleanBaseline
from repro.core.online import CordialService
from repro.core.pipeline import Cordial
from repro.experiments.serve import serve_stream
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType


def rec(seq, t, row=1, error_type=ErrorType.CE):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


def stream_of(n, spacing=10.0):
    return [rec(i, i * spacing, row=i % 32) for i in range(n)]


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(small_dataset, train)
    return model


@pytest.fixture(scope="module")
def test_stream(small_dataset, bank_split):
    _, test = bank_split
    test_set = set(test)
    return [r for r in small_dataset.store if r.bank_key in test_set]


@pytest.fixture(scope="module")
def truth(small_dataset, bank_split):
    _, test = bank_split
    return {bank: small_dataset.bank_truth[bank].uer_row_sequence
            for bank in test
            if small_dataset.bank_truth[bank].uer_row_sequence}


class TestOperators:
    def test_drop_is_exact_and_deterministic(self):
        stream = stream_of(200)
        out, dropped = op_drop(stream, rng(3), rate=0.2)
        assert len(out) + dropped == len(stream)
        assert 0 < dropped < len(stream)
        again, dropped2 = op_drop(stream, rng(3), rate=0.2)
        assert again == out and dropped2 == dropped
        assert op_drop(stream, rng(3), rate=0.0) == (stream, 0)

    def test_duplicate_adds_exactly_applied_items(self):
        stream = stream_of(100)
        out, applied = op_duplicate(stream, rng(1), rate=0.3,
                                    max_delay_events=4)
        assert applied > 0
        assert len(out) == len(stream) + applied
        # Every original item survives, in its original relative order,
        # and each sequence appears at most twice.
        sequences = [r.sequence for r in out]
        assert [s for s in dict.fromkeys(sequences)] == \
               [r.sequence for r in stream]
        assert all(sequences.count(r.sequence) <= 2 for r in stream)

    def test_reorder_forces_late_dead_letters(self):
        from repro.telemetry.collector import BMCCollector

        stream = stream_of(100, spacing=100.0)
        out, applied = op_reorder(stream, rng(7), rate=0.2,
                                  displacement=500.0)
        assert applied > 0
        assert sorted(r.sequence for r in out) == list(range(100))
        assert [r.sequence for r in out] != list(range(100))
        # Displaced beyond the skew window, the held records must land
        # in the dead-letter queue — never silently in a bank history.
        collector = BMCCollector(max_skew=50.0)
        released = []
        for record in out:
            released.extend(collector.ingest(record))
        released.extend(collector.flush())
        late = collector.dead_letter_counts.get("late", 0)
        assert late > 0
        assert len(released) + late == len(out)

    def test_clock_jitter_shifts_times_not_order(self):
        stream = stream_of(50)
        out, applied = op_clock_jitter(stream, rng(2), sigma=5.0, rate=1.0)
        assert applied == 50
        assert [r.sequence for r in out] == [r.sequence for r in stream]
        assert any(a.timestamp != b.timestamp
                   for a, b in zip(out, stream))
        assert all(r.timestamp >= 0.0 for r in out)

    def test_corrupt_damages_selected_records(self):
        stream = stream_of(60)
        out, applied = op_corrupt(stream, rng(5), rate=1.0)
        assert applied == 60 and len(out) == 60
        kinds = {"dict": 0, "nan": 0, "row": 0}
        for original, item in zip(stream, out):
            if isinstance(item, dict):
                kinds["dict"] += 1
            elif is_error_record(item) and math.isnan(item.timestamp):
                kinds["nan"] += 1
            else:
                assert item.address.row != original.address.row
                kinds["row"] += 1
        assert all(kinds.values())  # every corruption mode occurred

    def test_burst_permutes_within_chunks_only(self):
        stream = stream_of(64)
        out, applied = op_burst(stream, rng(9), rate=1.0, burst_size=8)
        assert applied == 8
        assert len(out) == 64
        for start in range(0, 64, 8):
            chunk = {r.sequence for r in out[start:start + 8]}
            assert chunk == set(range(start, start + 8))

    def test_operators_tolerate_garbage_items(self):
        stream = stream_of(20)
        stream[3] = {"not": "a record"}
        stream[11] = None
        for name in OPERATORS:
            out, _ = apply_operator(name, stream, rng(4), {})
            assert isinstance(out, list)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos operator"):
            apply_operator("meteor_strike", stream_of(3), rng(0), {})


class TestPlan:
    def test_default_plan_covers_every_operator(self):
        plan = default_plan()
        assert len(plan.operators) >= 6
        assert {spec.name for spec in plan.operators} == set(OPERATORS)

    def test_round_trips_through_json(self):
        plan = default_plan(max_skew=1800.0, kills_per_run=3, intensity=0.5)
        rebuilt = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown plan fields"):
            ChaosPlan.from_dict({"operators": [], "surprise": 1})
        with pytest.raises(ValueError, match="unknown chaos operator"):
            OperatorSpec("nope")
        with pytest.raises(ValueError, match="unknown tamper mode"):
            ChaosPlan(operators=(), tamper_modes=("scribble",))


class TestOracleCatchesInjectedViolations:
    """The oracle is only trustworthy if sabotage actually trips it."""

    @pytest.fixture()
    def outcome(self, cordial, test_stream, tmp_path):
        service = CordialService(cordial, max_skew=3600.0)
        return serve_with_faults(service, test_stream[:60], [30],
                                 str(tmp_path / "sab.ckpt"), rng(0))

    def test_clean_outcome_is_healthy(self, outcome, truth, tmp_path):
        oracle = InvariantOracle(default_plan())
        icr = outcome.service.coverage(truth)
        assert oracle.check_run(outcome, icr,
                                str(tmp_path / "scratch.ckpt")) == []

    def test_spare_budget_overcommit_is_caught(self, outcome, truth,
                                               tmp_path):
        service = outcome.service
        budget = service.replay.spares_per_bank
        bank = (0, 0, 0, 0, 0, 0, 0)
        service.replay.row_ctrl._spared[bank] = {
            row: 1.0 for row in range(budget + 5)}
        oracle = InvariantOracle(default_plan())
        violations = oracle.check_run(
            outcome, outcome.service.coverage(truth),
            str(tmp_path / "scratch.ckpt"))
        assert "spare_budget" in {v.invariant for v in violations}

    def test_metrics_tampering_is_caught(self, outcome):
        outcome.service.metrics.counter("collector.triggers_fired").inc()
        oracle = InvariantOracle(default_plan())
        violations = oracle.check_metrics_consistency(outcome.service)
        assert [v.invariant for v in violations] == ["metrics_consistency"]

    def test_event_leak_is_caught(self, outcome):
        outcome.service.metrics.counter("collector.events_ingested").inc(3)
        oracle = InvariantOracle(default_plan())
        violations = oracle.check_event_conservation(outcome.service)
        assert violations
        assert all(v.invariant == "event_conservation" for v in violations)

    def test_undetected_tamper_is_caught(self, outcome):
        from repro.chaos.faults import TamperTrial

        outcome.tamper_trials.append(
            TamperTrial(mode="truncate", detected=False, error=""))
        oracle = InvariantOracle(default_plan())
        violations = oracle.check_tamper_detection(outcome)
        assert [v.invariant for v in violations] == ["tamper_detection"]

    def test_unbounded_divergence_is_caught(self):
        oracle = InvariantOracle(
            default_plan(),
            clean=CleanBaseline(decision_count=1000, icr=0.9))
        violations = oracle.check_bounded_divergence(decision_count=0,
                                                     icr=0.1)
        assert {v.invariant for v in violations} == {"bounded_divergence"}

    def test_rewritten_isolation_history_is_caught(self, outcome):
        snapshots = [dict(s) for s in outcome.isolation_snapshots]
        if not any(s["spared_rows"] for s in snapshots):
            pytest.skip("no rows spared in this slice")
        # Forge a snapshot pair where an isolation time changed.
        import copy

        forged = copy.deepcopy(snapshots[-1])
        forged["spared_rows"][0][1][0][1] += 1.0
        oracle = InvariantOracle(default_plan())
        violations = oracle.check_isolation_monotonicity(
            outcome.service, [snapshots[-1], forged])
        assert "isolation_monotonicity" in {v.invariant for v in violations}


class TestCampaignAcceptance:
    @pytest.fixture(scope="class")
    def plan(self):
        return default_plan(max_skew=3600.0, kills_per_run=1)

    @pytest.fixture(scope="class")
    def acceptance(self, cordial, test_stream, truth, plan,
                   tmp_path_factory):
        workdir = str(tmp_path_factory.mktemp("chaos-acceptance"))
        return run_campaign(cordial, test_stream[:160], truth, plan,
                            CampaignConfig(runs=20, seed=0), workdir,
                            context={"suite": "acceptance"})

    def test_fixed_seed_campaign_passes_all_invariants(self, acceptance,
                                                       plan):
        assert len(plan.operators) >= 6
        assert len(acceptance["runs"]) >= 20
        assert acceptance["violations_total"] == 0
        assert acceptance["ok"] is True
        # Kill/restore faults genuinely happened ...
        assert all(run["restores"] >= 1 for run in acceptance["runs"])
        # ... and every tampered checkpoint was rejected, typed.
        trials = [t for run in acceptance["runs"]
                  for t in run["tamper_trials"]]
        assert trials and all(t["detected"] for t in trials)
        # The operators did real damage somewhere in the campaign.
        applied = {}
        for run in acceptance["runs"]:
            for op in run["operators"]:
                applied[op["name"]] = (applied.get(op["name"], 0)
                                       + op["applied"])
        assert set(applied) == {s.name for s in plan.operators}
        assert all(count > 0 for count in applied.values())

    def test_campaign_reruns_byte_identically(self, acceptance, cordial,
                                              test_stream, truth, plan,
                                              tmp_path):
        again = run_campaign(cordial, test_stream[:160], truth, plan,
                             CampaignConfig(runs=20, seed=0),
                             str(tmp_path),
                             context={"suite": "acceptance"})
        assert json.dumps(again, sort_keys=True) == \
               json.dumps(acceptance, sort_keys=True)

    def test_different_seed_changes_the_campaign(self, acceptance, cordial,
                                                 test_stream, truth, plan,
                                                 tmp_path):
        other = run_campaign(cordial, test_stream[:160], truth, plan,
                             CampaignConfig(runs=2, seed=1),
                             str(tmp_path))
        assert other["campaign_digest"] != acceptance["campaign_digest"]

    def test_campaigns_pass_across_seeds(self, cordial, test_stream, truth,
                                         plan, tmp_path):
        for seed in range(3):
            report = run_campaign(cordial, test_stream[:120], truth, plan,
                                  CampaignConfig(runs=2, seed=seed),
                                  str(tmp_path))
            assert report["ok"], report["runs"]

    def test_report_carries_no_filesystem_paths(self, acceptance, tmp_path):
        text = json.dumps(acceptance)
        assert "tmp" not in text and "ckpt" not in text

    def test_dead_letter_reasons_aggregate_across_runs(self, acceptance):
        # Regression: the campaign roll-up used to drop the per-reason
        # dead-letter histogram the run summaries carry, so the report
        # could not be reconciled against a journal's quarantine ledger.
        expect = {}
        for run in acceptance["runs"]:
            for reason, count in run["summary"]["dead_letters"].items():
                expect[reason] = expect.get(reason, 0) + count
        assert acceptance["dead_letters_total"] == expect
        # The house plan's reorder/corrupt operators guarantee real
        # quarantines somewhere in 20 runs.
        assert sum(expect.values()) > 0

    def test_observed_campaign_report_is_unchanged(self, acceptance,
                                                   cordial, test_stream,
                                                   truth, plan, tmp_path):
        # Observability attaches to the clean baseline only and must
        # leave the byte-stable report untouched.
        from repro.obs import FakeClock, Observability, SpanTracer

        obs = Observability(tracer=SpanTracer(clock=FakeClock()))
        observed = run_campaign(cordial, test_stream[:160], truth, plan,
                                CampaignConfig(runs=20, seed=0),
                                str(tmp_path),
                                context={"suite": "acceptance"}, obs=obs)
        assert json.dumps(observed, sort_keys=True) == \
               json.dumps(acceptance, sort_keys=True)
        # The journal witnessed the campaign: one run event per run,
        # plus the closing roll-up that matches the report.
        runs = [e for e in obs.journal.events if e["type"] == "run"]
        assert len(runs) == 20
        closing = [e for e in obs.journal.events
                   if e["type"] == "campaign"]
        assert len(closing) == 1
        assert closing[0]["dead_letters_total"] == \
               observed["dead_letters_total"]


class TestCorruptStreamServing:
    def test_nan_corruption_is_quarantined_exactly_once(self, cordial):
        # The op_corrupt "timestamp_nan" payload must land in the
        # malformed dead-letter queue without wedging the reorder buffer.
        service = CordialService(cordial, max_skew=100.0)
        poisoned = dataclasses.replace(rec(99, 50.0), timestamp=math.nan)
        for item in [rec(0, 0.0), poisoned, rec(1, 10.0), rec(2, 20.0)]:
            service.ingest(item)
        service.flush()
        assert service.collector.dead_letter_counts == {"malformed": 1}
        assert service.collector.pending_count == 0
        assert service.stats.events_ingested == 4

    def test_decision_digest_is_stable(self, cordial, test_stream):
        service = CordialService(cordial, max_skew=3600.0)
        _, decisions = serve_stream(service, test_stream[:80])
        service2 = CordialService(cordial, max_skew=3600.0)
        _, decisions2 = serve_stream(service2, test_stream[:80])
        assert decisions_digest(decisions) == decisions_digest(decisions2)
