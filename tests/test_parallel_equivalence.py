"""The determinism contract of the sharded parallel engine.

``generate_fleet_dataset(config, seed, jobs=k)`` must yield bit-identical
datasets for every ``k`` — same record stream (timestamps, addresses,
sequence numbers), same ground truth — and ``run_all`` must produce the
same report modulo elapsed-time strings.  These tests are the other half
of the engine itself: any RNG-flow change that breaks shard independence
fails here before it can silently skew results.
"""

import re
import threading
import time

import pytest

from repro.datasets import (FleetGenConfig, fleet_digest,
                            generate_fleet_dataset, shard_by_hbm)
from repro.experiments.common import ExperimentContext
from repro.experiments.dag import DagTask, execute_dag
from repro.experiments.runner import run_all
from repro.faults.types import FaultType


def assert_datasets_identical(a, b):
    """Field-by-field equality of two generated fleets."""
    assert len(a.store) == len(b.store)
    for ra, rb in zip(a.store, b.store):
        assert ra.timestamp == rb.timestamp
        assert ra.sequence == rb.sequence
        assert ra.address == rb.address
        assert ra.error_type is rb.error_type
        assert ra.bit_count == rb.bit_count
        assert ra.detector is rb.detector
    assert a.bank_truth == b.bank_truth


class TestGenerationEquivalence:
    @pytest.mark.parametrize("seed,scale", [(0, 0.02), (5, 0.03),
                                            (11, 0.05)])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_k_matches_jobs_1(self, seed, scale, jobs):
        config = FleetGenConfig(scale=scale)
        sequential = generate_fleet_dataset(config, seed=seed, jobs=1)
        parallel = generate_fleet_dataset(config, seed=seed, jobs=jobs)
        assert_datasets_identical(sequential, parallel)

    def test_digest_equivalence(self):
        config = FleetGenConfig(scale=0.02)
        digests = {fleet_digest(generate_fleet_dataset(config, seed=7,
                                                       jobs=jobs))
                   for jobs in (1, 2, 4)}
        assert len(digests) == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            generate_fleet_dataset(FleetGenConfig(scale=0.02), seed=0,
                                   jobs=0)


class TestRunAllEquivalence:
    def test_fast_report_matches(self):
        strip = lambda text: re.sub(r"\(\d+\.\d+s\)", "(Xs)", text)
        sequential = run_all(ExperimentContext(scale=0.05, seed=3),
                             include_models=False, include_examples=True)
        parallel = run_all(ExperimentContext(scale=0.05, seed=3, jobs=4),
                           include_models=False, include_examples=True)
        assert strip(sequential) == strip(parallel)

    def test_full_report_matches(self):
        """The whole DAG — analysis lanes concurrent with E3 -> E4."""
        strip = lambda text: re.sub(r"\(\d+\.\d+s\)", "(Xs)", text)
        sequential = run_all(ExperimentContext(scale=0.05, seed=3),
                             include_models=True)
        parallel = run_all(ExperimentContext(scale=0.05, seed=3, jobs=4),
                           include_models=True)
        assert strip(sequential) == strip(parallel)


class TestSeedCouplingRegression:
    """CE-fault placement must not depend on UCE realisation draws.

    Historically one generator threaded through planting *and*
    realisation, so any change in how many values a UCE fault consumed
    (e.g. its post-onset CE stream) shifted every later cell fault — the
    exact coupling that shard boundaries would perturb.  Placement now
    draws from an independent spawned child: inflating the UCE CE/UEO
    streams must leave every cell fault untouched.
    """

    def _cell_events(self, dataset):
        cells = sorted(k for k, t in dataset.bank_truth.items()
                       if t.fault_type is FaultType.CELL_FAULT)
        return {k: [(r.timestamp, r.row, r.column, r.error_type)
                    for r in dataset.store.bank_events(k)]
                for k in cells}

    def test_cell_faults_invariant_to_uce_stream_params(self):
        from dataclasses import replace

        from repro.faults.processes import FaultProcessParams

        params = FaultProcessParams()
        boosted = replace(
            params,
            ce_count_mean={k: v * 3
                           for k, v in params.ce_count_mean.items()},
            ueo_count_mean={k: v * 3
                            for k, v in params.ueo_count_mean.items()})
        base = generate_fleet_dataset(FleetGenConfig(scale=0.05), seed=11)
        inflated = generate_fleet_dataset(
            replace(FleetGenConfig(scale=0.05), process=boosted), seed=11)

        cells_base = self._cell_events(base)
        cells_inflated = self._cell_events(inflated)
        assert cells_base.keys() == cells_inflated.keys()
        assert len(cells_base) > 100
        assert cells_base == cells_inflated


class TestShardByHbm:
    def test_partition_is_complete_and_disjoint(self):
        keys = [(n, 0, h, 0, 0, 0, 0, b)
                for n in range(3) for h in range(4) for b in range(2)]
        shards = shard_by_hbm(keys, 4)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(keys)))

    def test_hbm_groups_stay_together(self):
        keys = [(1, 2, 3, 0, 0, 0, 0, 0), (9, 9, 9, 0, 0, 0, 0, 0),
                (1, 2, 3, 0, 0, 0, 1, 5), (1, 2, 3, 1, 0, 0, 0, 0)]
        shards = shard_by_hbm(keys, 8)
        for shard in shards:
            hbms = {tuple(keys[i][:3]) for i in shard}
            assert len(hbms) == 1

    def test_more_shards_than_groups(self):
        shards = shard_by_hbm([(0, 0, 0, 0, 0, 0, 0, 0)], 16)
        assert shards == [[0]]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_by_hbm([], 0)


class TestDagExecutor:
    def test_sequential_runs_in_declaration_order(self):
        order = []
        tasks = [DagTask(name, lambda n=name: order.append(n))
                 for name in ("a", "b", "c")]
        execute_dag(tasks, jobs=1)
        assert order == ["a", "b", "c"]

    def test_dependencies_respected_in_parallel(self):
        finished = []
        lock = threading.Lock()

        def work(name, delay):
            time.sleep(delay)
            with lock:
                finished.append(name)
            return name

        tasks = [
            DagTask("slow", lambda: work("slow", 0.1)),
            DagTask("fast", lambda: work("fast", 0.0)),
            DagTask("after-slow", lambda: work("after-slow", 0.0),
                    deps=("slow",)),
        ]
        results = execute_dag(tasks, jobs=4)
        assert set(results) == {"slow", "fast", "after-slow"}
        assert finished.index("slow") < finished.index("after-slow")
        assert all(r.elapsed >= 0 for r in results.values())

    def test_cycle_detected(self):
        tasks = [DagTask("a", lambda: None, deps=("b",)),
                 DagTask("b", lambda: None, deps=("a",))]
        with pytest.raises(ValueError, match="cycle"):
            execute_dag(tasks, jobs=2)

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            execute_dag([DagTask("a", lambda: None, deps=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            execute_dag([DagTask("a", lambda: None),
                         DagTask("a", lambda: None)])

    def test_task_error_propagates(self):
        def boom():
            raise RuntimeError("task failed")

        tasks = [DagTask("ok", lambda: 1), DagTask("bad", boom)]
        with pytest.raises(RuntimeError, match="task failed"):
            execute_dag(tasks, jobs=2)
