"""Serial == parallel training, down to persisted-model bytes.

The contract of :mod:`repro.ml.parallel`: ``n_jobs`` is a pure
wall-clock knob — every tree draws from its own ``SeedSequence`` child
and workers merge in total order, so the fitted model can never depend
on worker count.  These tests lock that down for all three model
families, plus regression tests for the CV/tuning bugfixes that shipped
alongside (eager fold validation, deterministic default seeds,
proba-aware scorers, ``sample_weight`` threading, ranked tie-breaks).
"""

import numpy as np
import pytest

from repro.ml.cv import GroupKFold, StratifiedKFold, cross_val_score
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBClassifier
from repro.ml.lgbm import LGBMClassifier
from repro.ml.parallel import resolve_n_jobs
from repro.ml.persist import dump_model
from repro.ml.scoring import auprc, make_scorer
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.tuning import GridSearchResult, grid_search


def _dataset(n=240, n_classes=3, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    raw = X[:, 0] + 0.8 * X[:, 1] ** 2 - X[:, 2] + rng.normal(
        scale=0.5, size=n)
    if n_classes == 2:
        y = (raw > 0.2).astype(int)
    else:
        y = np.clip(np.digitize(raw, [-0.4, 0.7]), 0, n_classes - 1)
    return X, y


MODEL_FACTORIES = {
    "forest": lambda jobs: RandomForestClassifier(
        n_estimators=12, max_depth=6, random_state=3, n_jobs=jobs),
    "xgb": lambda jobs: XGBClassifier(
        n_estimators=5, max_depth=3, subsample=0.8, colsample=0.7,
        random_state=3, n_jobs=jobs),
    "lgbm": lambda jobs: LGBMClassifier(
        n_estimators=5, num_leaves=7, min_child_samples=4, goss=True,
        feature_fraction=0.7, random_state=3, n_jobs=jobs),
}


class TestBitIdenticalTraining:
    """n_jobs in {1, 2, 4}: identical trees, probabilities, importances,
    and persisted bytes — multiclass so boosting rounds fan out too."""

    @pytest.mark.parametrize("family", sorted(MODEL_FACTORIES))
    @pytest.mark.parametrize("n_classes", [2, 3])
    def test_predictions_and_importances_identical(self, family, n_classes):
        X, y = _dataset(n_classes=n_classes)
        make = MODEL_FACTORIES[family]
        reference = make(1).fit(X, y)
        for jobs in (2, 4):
            candidate = make(jobs).fit(X, y)
            assert np.array_equal(reference.predict_proba(X),
                                  candidate.predict_proba(X))
            assert np.array_equal(reference.feature_importances_,
                                  candidate.feature_importances_)
            assert np.array_equal(reference.predict(X), candidate.predict(X))

    @pytest.mark.parametrize("family", sorted(MODEL_FACTORIES))
    def test_persisted_model_bytes_identical(self, family, tmp_path):
        X, y = _dataset(n_classes=3)
        make = MODEL_FACTORIES[family]
        payloads = {}
        for jobs in (1, 4):
            path = tmp_path / f"{family}_{jobs}.json"
            dump_model(make(jobs).fit(X, y), path)
            payloads[jobs] = path.read_bytes()
        assert payloads[1] == payloads[4]

    def test_n_jobs_minus_one_is_all_cores(self):
        X, y = _dataset(n=120, n_classes=2)
        reference = MODEL_FACTORIES["forest"](1).fit(X, y)
        candidate = MODEL_FACTORIES["forest"](-1).fit(X, y)
        assert np.array_equal(reference.predict_proba(X),
                              candidate.predict_proba(X))

    def test_bad_n_jobs_rejected_eagerly(self):
        for family in MODEL_FACTORIES:
            with pytest.raises(ValueError):
                MODEL_FACTORIES[family](0)
            with pytest.raises(ValueError):
                MODEL_FACTORIES[family](-2)

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1


class _CountingFactory:
    """Model factory that counts how many models were ever built."""

    def __init__(self):
        self.builds = 0

    def __call__(self):
        self.builds += 1
        return DecisionTreeClassifier(max_depth=2)


class TestEagerFoldValidation:
    """The empty-fold error must fire before any model is fitted."""

    def test_stratified_raises_before_first_yield(self):
        y = np.array([0, 0, 1, 1])  # both classes spread over folds 0-1
        with pytest.raises(ValueError, match="came out empty"):
            next(StratifiedKFold(n_splits=3, seed=0).split(y))

    def test_group_kfold_eager(self):
        # 3 groups over 3 folds is fine; the generator must not defer
        # validation until iteration reaches a bad fold.
        pairs = list(GroupKFold(3, seed=0).split(["a", "a", "b", "c"]))
        assert len(pairs) == 3
        for train, test in pairs:
            assert test.size > 0 and train.size > 0

    def test_cross_val_score_fits_nothing_on_doomed_split(self):
        X = np.zeros((4, 2))
        y = np.array([0, 0, 1, 1])
        factory = _CountingFactory()
        with pytest.raises(ValueError, match="came out empty"):
            cross_val_score(factory, X, y, n_splits=3, seed=0)
        assert factory.builds == 0


class TestDeterministicDefaults:
    """cross_val_score must be deterministic without an explicit seed."""

    def test_default_seed_stratified(self):
        X, y = _dataset(n=90, n_classes=2)
        a = cross_val_score(lambda: DecisionTreeClassifier(max_depth=3),
                            X, y, n_splits=3)
        b = cross_val_score(lambda: DecisionTreeClassifier(max_depth=3),
                            X, y, n_splits=3)
        assert np.array_equal(a, b)

    def test_default_seed_plain_kfold(self):
        X, y = _dataset(n=90, n_classes=2)
        a = cross_val_score(lambda: DecisionTreeClassifier(max_depth=3),
                            X, y, n_splits=3, stratified=False)
        b = cross_val_score(lambda: DecisionTreeClassifier(max_depth=3),
                            X, y, n_splits=3, stratified=False)
        assert np.array_equal(a, b)


class _WeightRecorder:
    """Fake model recording the sample_weight its fit() received."""

    def __init__(self, log):
        self._log = log

    def fit(self, X, y, sample_weight=None):
        self._log.append(None if sample_weight is None
                         else np.asarray(sample_weight).copy())
        self._majority = int(np.bincount(np.asarray(y)).argmax())
        return self

    def predict(self, X):
        return np.full(len(X), self._majority)


class TestScorerAndWeights:
    def test_proba_scorer_reaches_predict_proba(self):
        X, y = _dataset(n=150, n_classes=2)
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=4), X, y, n_splits=3,
            scorer=make_scorer(auprc, needs_proba=True))
        assert scores.shape == (3,)
        assert (scores > 0.5).all()  # far better than the ~0.5 base rate

    def test_legacy_label_scorer_still_works(self):
        X, y = _dataset(n=90, n_classes=2)
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=3), X, y, n_splits=3,
            scorer=lambda a, b: float(np.mean(np.asarray(a)
                                              == np.asarray(b))))
        assert (scores > 0.5).all()

    def test_sample_weight_sliced_per_fold(self):
        X = np.zeros((12, 2))
        y = np.array([0, 1] * 6)
        weight = np.arange(12, dtype=np.float64)
        log = []
        cross_val_score(lambda: _WeightRecorder(log), X, y, n_splits=3,
                        seed=0, sample_weight=weight)
        assert len(log) == 3
        for received in log:
            # each fold's model sees the training slice: 8 of the 12
            # weights, all of them drawn from the original vector
            assert received is not None
            assert received.shape == (8,)
            assert set(received.tolist()) <= set(weight.tolist())

    def test_grid_search_threads_sample_weight_to_refit(self):
        X = np.zeros((12, 2))
        y = np.array([0, 1] * 6)
        weight = np.arange(12, dtype=np.float64)
        log = []
        grid_search(lambda **kw: _WeightRecorder(log), {"unused": [0]},
                    X, y, n_splits=3, seed=0, sample_weight=weight)
        # 3 folds + the final refit, which sees the full weight vector
        assert len(log) == 4
        assert np.array_equal(log[-1], weight)


class TestRankedTieBreak:
    def test_ties_break_on_params(self):
        result = GridSearchResult(
            best_params={"a": 1}, best_score=0.5,
            results={(("a", 2),): 0.5, (("a", 1),): 0.5, (("a", 3),): 0.9},
            best_model=None)
        ranked = result.ranked()
        assert ranked[0] == ((("a", 3),), 0.9)
        assert [params for params, _ in ranked[1:]] == [(("a", 1),),
                                                        (("a", 2),)]

    def test_mixed_type_params_do_not_crash(self):
        result = GridSearchResult(
            best_params={"d": None}, best_score=0.5,
            results={(("d", None),): 0.5, (("d", 5),): 0.5},
            best_model=None)
        ranked = result.ranked()  # None vs 5 compare via repr, not <
        assert len(ranked) == 2
        assert ranked == sorted(ranked, key=lambda i: (-i[1], str(i[0])))


def _tree_factory():
    return DecisionTreeClassifier(max_depth=3)


def _tree_factory_params(max_depth=2):
    return DecisionTreeClassifier(max_depth=max_depth)


class TestFoldParallelTier:
    """n_jobs in CV/grid search never changes a score."""

    def test_cross_val_score_jobs_invariant(self):
        X, y = _dataset(n=120, n_classes=2)
        serial = cross_val_score(_tree_factory, X, y, n_splits=4, seed=0)
        parallel = cross_val_score(_tree_factory, X, y, n_splits=4, seed=0,
                                   n_jobs=2)
        assert np.array_equal(serial, parallel)

    def test_lambda_factory_falls_back_to_serial(self):
        X, y = _dataset(n=90, n_classes=2)
        serial = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=3), X, y,
            n_splits=3, seed=0)
        fallback = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=3), X, y,
            n_splits=3, seed=0, n_jobs=4)
        assert np.array_equal(serial, fallback)

    def test_grid_search_jobs_invariant(self):
        X, y = _dataset(n=120, n_classes=2)
        serial = grid_search(_tree_factory_params, {"max_depth": [1, 2, 3]},
                             X, y, n_splits=3, seed=0)
        parallel = grid_search(_tree_factory_params, {"max_depth": [1, 2, 3]},
                               X, y, n_splits=3, seed=0, n_jobs=2)
        assert serial.best_params == parallel.best_params
        assert serial.best_score == parallel.best_score
        assert serial.results == parallel.results
