"""Shard supervision: the fleet survives its workers, byte for byte.

Locks down the supervision layer shipped with ``repro.serving.supervisor``:

(a) typed failure surface — every worker interaction raises
    :class:`ShardFailureError` (kind ``crash`` / ``hang`` / ``protocol``);
    raw ``EOFError`` / ``BrokenPipeError`` never escape, and a dead or
    hung worker fails *fast* (the ``batch_timeout`` deadline, never a
    blocking ``recv``);
(b) deterministic restart — for seeded crash/hang/garbage schedules over
    1/2/4 shards, decisions, ICR, stats, merged metrics, and merged
    service state are byte-identical to an undisturbed run;
(c) poison quarantine — a record that kills its worker is bisected out
    and dead-lettered under reason ``"poison"``, with everything else
    unchanged (``strip_poison_accounting`` normalises the ledger delta);
(d) degraded failover — an exhausted restart budget adopts the slot's
    shards in-process, recorded in metrics/journal/audit, output still
    byte-identical;
(e) supervisor metrics — the ``supervisor.*`` series export at zero on a
    healthy run, count faults when they happen, and render through the
    Prometheus exporter;
plus the chaos-plumbing that rides along: ``plant_poison`` twin
semantics, ``WorkerFault`` validation, plan round-trip of the new
fields, supervised campaign runs, and CLI validation.
"""

import dataclasses
import json
import pickle
import time

import numpy as np
import pytest

from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.chaos.operators import (PoisonDetonation, PoisonRecord,
                                   make_poison, plant_poison)
from repro.chaos.oracle import strip_poison_accounting
from repro.chaos.plan import ChaosPlan, OperatorSpec
from repro.core.online import CordialService
from repro.core.pipeline import Cordial
from repro.experiments import runner
from repro.experiments.serve import bounded_shuffle, serve_stream
from repro.hbm.address import DeviceAddress
from repro.obs.promexport import render_prometheus
from repro.serving import (FAILURE_CRASH, FAILURE_HANG, FAILURE_PROTOCOL,
                           ShardFailureError, ShardSupervisor,
                           ShardedCordialEngine, SupervisorConfig,
                           backoff_delay, shard_of_bank)
from repro.telemetry.collector import REASON_POISON
from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.metrics import MetricsRegistry

MAX_SKEW = 600.0

#: Generous wall-clock ceiling for the "fails fast" assertions: the
#: engines below run with ``batch_timeout`` of 1-2 s, so detection far
#: under this bound proves the deadline (not a blocking recv) fired.
FAST = 20.0


def rec(seq, t, row, bank=0, error_type=ErrorType.CE):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=bank,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


@pytest.fixture(scope="module")
def cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(small_dataset, train)
    return model


@pytest.fixture(scope="module")
def test_stream(small_dataset, bank_split):
    _, test = bank_split
    test_set = set(test)
    stream = [r for r in small_dataset.store if r.bank_key in test_set]
    return bounded_shuffle(stream, MAX_SKEW, seed=5)


@pytest.fixture(scope="module")
def truth(small_dataset, bank_split):
    _, test = bank_split
    return {bank: small_dataset.bank_truth[bank].uer_row_sequence
            for bank in test
            if small_dataset.bank_truth[bank].uer_row_sequence}


@pytest.fixture(scope="module")
def baseline(cordial, test_stream):
    service = CordialService(cordial, max_skew=MAX_SKEW)
    service, decisions = serve_stream(service, test_stream)
    return service, decisions


@pytest.fixture(scope="module")
def clean_fleet(cordial, test_stream):
    """Undisturbed fleet outcome per shard count (memoised)."""
    cache = {}

    def get(n_shards):
        if n_shards not in cache:
            cache[n_shards] = run_fleet(cordial, test_stream, n_shards)
        return cache[n_shards]

    return get


def decisions_json(decisions):
    return json.dumps([d.to_obj() for d in decisions], sort_keys=True)


def run_fleet(cordial, stream, n_shards, n_jobs=1, **kwargs):
    engine = ShardedCordialEngine(cordial, n_shards, n_jobs=n_jobs,
                                  max_skew=MAX_SKEW, **kwargs)
    try:
        for record in stream:
            engine.submit(record)
        return engine.finish()
    finally:
        engine.close()


def supervisor_config(**overrides):
    defaults = dict(max_restarts=8, batch_timeout=30.0, snapshot_every=4,
                    poison_threshold=2, backoff_base=0.0)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def run_supervised(cordial, stream, n_shards, schedule=(), n_jobs=1,
                   config=None, **kwargs):
    """Serve ``stream`` supervised, injecting ``(position, shard, mode)``
    faults after the given submissions; returns ``(engine, outcome)``."""
    engine = ShardedCordialEngine(cordial, n_shards, n_jobs=n_jobs,
                                  max_skew=MAX_SKEW,
                                  supervisor=config or supervisor_config(),
                                  **kwargs)
    pending = {}
    for position, shard, mode in schedule:
        pending.setdefault(int(position), []).append((int(shard), mode))
    try:
        for index, record in enumerate(stream):
            engine.submit(record)
            for shard, mode in pending.pop(index, []):
                engine.inject_fault(shard, mode)
        outcome = engine.finish()
        return engine, outcome
    finally:
        engine.close()


def crash_schedule(seed, n_shards, length):
    """A seeded 3-fault schedule mixing all modes over the stream."""
    rng = np.random.default_rng(1000 * n_shards + seed)
    positions = sorted(int(p) for p in rng.choice(
        np.arange(1, length - 1), size=3, replace=False))
    modes = ("crash", "hang", "garbage")
    return [(position, int(rng.integers(0, n_shards)),
             modes[int(rng.integers(0, len(modes)))])
            for position in positions]


def assert_equivalent(outcome, clean, expect_service, expect_decisions,
                      truth):
    """The supervised outcome is byte-identical to the undisturbed one."""
    assert decisions_json(outcome.decisions) == \
        decisions_json(expect_decisions)
    assert outcome.stats == expect_service.stats.to_dict()
    assert outcome.service.coverage(truth) == expect_service.coverage(truth)
    assert json.dumps(outcome.metrics, sort_keys=True) == \
        json.dumps(clean.metrics, sort_keys=True)
    assert json.dumps(outcome.service.state_dict(), sort_keys=True) == \
        json.dumps(clean.service.state_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# (a) typed failure surface
# ---------------------------------------------------------------------------

class TestFailureTaxonomy:
    def test_error_carries_kind_op_and_worker(self):
        error = ShardFailureError(FAILURE_HANG, "batch", "no reply",
                                  worker_index=3)
        assert isinstance(error, RuntimeError)
        assert (error.kind, error.op, error.worker_index) == \
            (FAILURE_HANG, "batch", 3)
        assert "shard worker 3" in str(error)
        assert "'batch'" in str(error)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            ShardFailureError("meltdown", "batch", "boom")

    def test_backoff_is_deterministic_and_capped(self):
        assert backoff_delay(0, 0.5, 8.0) == 0.5
        assert backoff_delay(3, 0.5, 8.0) == 4.0
        assert backoff_delay(10, 0.5, 8.0) == 8.0
        assert backoff_delay(7, 0.0, 8.0) == 0.0

    @pytest.mark.parametrize("bad", [
        {"max_restarts": -1},
        {"batch_timeout": 0.0},
        {"snapshot_every": 0},
        {"poison_threshold": 0},
        {"backoff_base": -0.1},
    ])
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            SupervisorConfig(**bad)


class TestTypedErrorsFromProcessWorkers:
    """Satellite regressions: raw pipe exceptions never escape, and a
    dead or hung worker is detected within the ``batch_timeout``
    deadline rather than blocking forever."""

    def make_engine(self, cordial, batch_timeout):
        return ShardedCordialEngine(cordial, 2, n_jobs=2, max_skew=MAX_SKEW,
                                    batch_timeout=batch_timeout)

    def test_killed_worker_surfaces_typed_crash_not_eof(self, cordial,
                                                       test_stream,
                                                       tmp_path):
        engine = self.make_engine(cordial, batch_timeout=2.0)
        try:
            worker = engine._workers[0]
            worker.ping()  # init round-trip completed; the worker is up
            worker._process.kill()
            worker._process.join()
            started = time.monotonic()
            with pytest.raises(ShardFailureError) as excinfo:
                engine.checkpoint(str(tmp_path / "dead.ckpt"))
            assert time.monotonic() - started < FAST
            assert excinfo.value.kind == FAILURE_CRASH
            assert not isinstance(excinfo.value, (EOFError, BrokenPipeError))
        finally:
            engine.close()

    def test_killed_worker_mid_batch_surfaces_typed_crash(self, cordial,
                                                          test_stream):
        engine = self.make_engine(cordial, batch_timeout=2.0)
        template = next(r for r in test_stream
                        if shard_of_bank(r.bank_key, 2) == 0)
        try:
            engine._workers[0].ping()
            engine._workers[0]._process.kill()
            engine._workers[0]._process.join()
            # Enough records for shard 0 to cross BATCH_SIZE and
            # dispatch into the dead worker's pipe; OS buffering may
            # defer detection to the finish sync, but the surfaced
            # error must be typed either way.
            with pytest.raises(ShardFailureError) as excinfo:
                for index in range(600):
                    engine.submit(dataclasses.replace(
                        template, sequence=template.sequence + index,
                        timestamp=template.timestamp + 0.001 * index))
                engine.finish()
            assert excinfo.value.kind == FAILURE_CRASH
        finally:
            engine.close()

    @pytest.mark.parametrize("mode,kind", [
        ("hang", FAILURE_HANG),
        ("garbage", FAILURE_PROTOCOL),
    ])
    def test_hung_or_garbling_worker_fails_fast_and_typed(self, cordial,
                                                          tmp_path, mode,
                                                          kind):
        engine = self.make_engine(cordial, batch_timeout=1.0)
        try:
            worker = engine._workers[0]
            worker.ping()
            worker.chaos(mode)
            started = time.monotonic()
            with pytest.raises(ShardFailureError) as excinfo:
                engine.checkpoint(str(tmp_path / "stuck.ckpt"))
            assert time.monotonic() - started < FAST
            assert excinfo.value.kind == kind
        finally:
            # A hanging worker ignores the polite stop; hard-kill it so
            # close() doesn't sit out its join timeout.
            engine._workers[0].terminate()
            engine.close()


# ---------------------------------------------------------------------------
# (b) deterministic restart: byte-identical output under fault schedules
# ---------------------------------------------------------------------------

class TestSupervisedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_crash_schedule_matrix(self, cordial, test_stream, truth,
                                   baseline, clean_fleet, seed, n_shards):
        """Seeded crash/hang/garbage schedules never show up in the
        output, for any shard count."""
        expect_service, expect = baseline
        schedule = crash_schedule(seed, n_shards, len(test_stream))
        engine, outcome = run_supervised(cordial, test_stream, n_shards,
                                         schedule)
        assert_equivalent(outcome, clean_fleet(n_shards), expect_service,
                          expect, truth)
        metrics = engine.supervisor_metrics
        assert metrics.counter_value("supervisor.restarts_total") >= 1.0
        assert metrics.counter_value("supervisor.degraded_shards") == 0.0
        assert metrics.counter_value("supervisor.poison_records_total") == 0.0

    @pytest.mark.parametrize("mode", ["crash", "hang", "garbage"])
    def test_process_worker_faults(self, cordial, test_stream, truth,
                                   baseline, clean_fleet, mode):
        """Real spawned workers: in-band chaos kills/hangs/garbles a
        worker process; recovery replays to the identical output."""
        expect_service, expect = baseline
        schedule = [(len(test_stream) // 3, 0, mode)]
        engine, outcome = run_supervised(
            cordial, test_stream, 2, schedule, n_jobs=2,
            config=supervisor_config(batch_timeout=2.0))
        assert_equivalent(outcome, clean_fleet(2), expect_service, expect,
                          truth)
        assert engine.supervisor_metrics.counter_value(
            "supervisor.restarts_total") >= 1.0

    def test_supervised_checkpoint_restart(self, cordial, test_stream,
                                           baseline, tmp_path):
        """A fleet checkpoint taken through the supervisor resumes
        bit-identically (the checkpoint doubles as the slot baseline)."""
        _, expect = baseline
        half = len(test_stream) // 2
        directory = str(tmp_path / "supervised.ckpt")

        engine = ShardedCordialEngine(cordial, 2, max_skew=MAX_SKEW,
                                      supervisor=supervisor_config())
        try:
            for index, record in enumerate(test_stream[:half]):
                engine.submit(record)
                if index == half // 2:
                    engine.inject_fault(0, "crash")
            engine.checkpoint(directory)
            segments = engine.drain_segments()
        finally:
            engine.close()

        successor = ShardedCordialEngine.restore(
            directory, supervisor=supervisor_config())
        try:
            for record in test_stream[half:]:
                successor.submit(record)
            outcome = successor.finish()
        finally:
            successor.close()
        from repro.serving import merge_decisions
        decisions = merge_decisions(segments + [outcome.decisions])
        assert decisions_json(decisions) == decisions_json(expect)


# ---------------------------------------------------------------------------
# (c) poison quarantine
# ---------------------------------------------------------------------------

class TestPoisonRecords:
    def test_detonates_on_sequence_read(self):
        poison = make_poison(rec(7, 100.0, 1), 42.0)
        assert isinstance(poison, ErrorRecord)
        assert poison.timestamp == 42.0
        with pytest.raises(PoisonDetonation):
            poison.sequence
        assert "PoisonRecord" in repr(poison)  # repr must NOT detonate

    def test_detonates_identically_after_pickling(self):
        poison = make_poison(rec(7, 100.0, 1), 42.0)
        clone = pickle.loads(pickle.dumps(poison))
        assert isinstance(clone, PoisonRecord)
        assert clone.timestamp == 42.0
        with pytest.raises(PoisonDetonation):
            clone.sequence

    def test_plant_poison_twin_semantics(self):
        garbage = {"not": "a record"}
        stream = [rec(0, 10.0, 1), rec(1, 5.0, 2), garbage, rec(2, 20.0, 3)]
        faulted, twin, planted = plant_poison(stream, [0, 1, 2, 3])
        # Position 0 has no record prefix and position 2 is garbage:
        # both are skipped in BOTH streams.
        assert planted == 2
        assert faulted[0] is stream[0] and faulted[2] is garbage
        assert twin == [stream[0], garbage]
        # Poison timestamps pin to the running max of the prefix, so
        # they sit exactly on the watermark: accepted, never "late".
        assert isinstance(faulted[1], PoisonRecord)
        assert faulted[1].timestamp == 10.0
        assert isinstance(faulted[3], PoisonRecord)
        assert faulted[3].timestamp == 10.0

    @pytest.mark.parametrize("n_jobs,batch_size,positions", [
        (1, 256, (60, 400)),   # in-process workers, default batching
        (2, 16, (120,)),       # spawned workers, small batches (fast bisect)
    ])
    def test_quarantined_byte_identically(self, cordial, test_stream, truth,
                                          n_jobs, batch_size, positions):
        """The poison ends in the coordinator dead-letter ledger under
        reason "poison"; everything else matches the twin run exactly."""
        faulted, twin, planted = plant_poison(test_stream, list(positions))
        assert planted == len(positions)

        engine, outcome = run_supervised(
            cordial, faulted, 2, n_jobs=n_jobs, batch_size=batch_size,
            config=supervisor_config(poison_threshold=1, batch_timeout=5.0))
        clean = run_fleet(cordial, twin, 2, batch_size=batch_size)

        assert decisions_json(outcome.decisions) == \
            decisions_json(clean.decisions)
        assert outcome.service.coverage(truth) == \
            clean.service.coverage(truth)
        ledger = outcome.service.collector.dead_letter_counts
        assert ledger.get(REASON_POISON) == planted
        assert engine.supervisor_metrics.counter_value(
            "supervisor.poison_records_total") == float(planted)
        stripped = strip_poison_accounting(outcome.service.state_dict())
        assert json.dumps(stripped, sort_keys=True) == \
            json.dumps(clean.service.state_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# supervisor policy unit tests (fake workers: fast, exact)
# ---------------------------------------------------------------------------

class Marker:
    """A poison stand-in the fake worker detonates on."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"Marker({self.name})"


class FakeWorker:
    """In-memory worker honouring the supervised protocol.

    Ingests plain items per shard; a :class:`Marker` item detonates
    (typed crash), mirroring a poison record killing the service code.
    """

    supports_chaos = False

    def __init__(self, spawn_log, tag):
        self.ingested = {}
        self.dead = False
        self.spawn_log = spawn_log
        self.tag = tag
        spawn_log.append(("spawn", tag))

    def _check(self, op):
        if self.dead:
            raise ShardFailureError(FAILURE_CRASH, op, "fake worker dead")

    def load(self, shard_id, state):
        self._check("load")
        self.ingested[shard_id] = list(state)

    def batch(self, shard_id, records):
        self._check("batch")
        for record in records:
            if isinstance(record, Marker):
                self.dead = True
                raise ShardFailureError(FAILURE_CRASH, "batch",
                                        f"detonated {record!r}")
            self.ingested.setdefault(shard_id, []).append(record)

    def ping(self):
        self._check("ping")

    def snapshot(self):
        self._check("snapshot")
        return {shard_id: {"state": list(items), "decisions": []}
                for shard_id, items in self.ingested.items()}

    def checkpoint(self):
        self._check("checkpoint")
        return {shard_id: {"document": {"state": list(items)}}
                for shard_id, items in self.ingested.items()}

    def finish(self):
        self._check("finish")
        return {shard_id: {"state": list(items)}
                for shard_id, items in self.ingested.items()}

    def terminate(self):
        self.dead = True

    def close(self):
        self.spawn_log.append(("close", self.tag))


class RecordingJournal:
    def __init__(self):
        self.events = []

    def supervision(self, action, worker_index, shards=(), detail=""):
        self.events.append((action, worker_index, tuple(shards), detail))


class RecordingAudit:
    def __init__(self):
        self.decisions = []

    def record_decision(self, **kwargs):
        self.decisions.append(kwargs)


def make_supervisor(config, journal=None, audit=None):
    spawn_log, segments, poisons, sleeps = [], [], [], []

    def spawn(index, shard_ids, restart):
        return FakeWorker(spawn_log, ("primary", index, restart))

    def spawn_fallback(index, shard_ids, restart):
        return FakeWorker(spawn_log, ("fallback", index, restart))

    registry = MetricsRegistry()
    supervisor = ShardSupervisor(
        config, spawn=spawn, spawn_fallback=spawn_fallback,
        on_segment=segments.append,
        on_poison=lambda record, shard_id, detail: poisons.append(
            (record, shard_id)),
        metrics=registry, journal=journal, audit=audit,
        sleep=sleeps.append)
    slot = supervisor.register(spawn(0, [0], 0), [0])
    return supervisor, slot, registry, poisons, sleeps, spawn_log


class TestSupervisorPolicy:
    def test_restart_replays_the_log(self):
        supervisor, slot, registry, _, _, _ = make_supervisor(
            supervisor_config(snapshot_every=100))
        supervisor.dispatch(0, ["a", "b"])
        supervisor.inject_fault(0, "crash")  # pending: fires at next op
        supervisor.dispatch(0, ["c"])
        assert slot.worker.ingested[0] == ["a", "b", "c"]
        assert registry.counter_value("supervisor.restarts_total") == 1.0

    def test_backoff_schedule_is_attempt_indexed(self):
        supervisor, _, _, _, sleeps, _ = make_supervisor(
            supervisor_config(snapshot_every=100, backoff_base=0.5,
                              backoff_cap=2.0))
        supervisor.dispatch(0, ["a"])
        supervisor.inject_fault(0, "crash")
        supervisor.dispatch(0, ["b"])
        supervisor.inject_fault(0, "hang")
        supervisor.dispatch(0, ["c"])
        assert sleeps == [0.5, 1.0]

    def test_poison_is_bisected_out_and_quarantined(self):
        supervisor, slot, registry, poisons, _, _ = make_supervisor(
            supervisor_config(snapshot_every=100, poison_threshold=2))
        poison = Marker("p1")
        supervisor.dispatch(0, ["a", "b"])
        supervisor.dispatch(0, ["c", poison, "d"])
        assert poisons == [(poison, 0)]
        assert slot.worker.ingested[0] == ["a", "b", "c", "d"]
        assert registry.counter_value(
            "supervisor.poison_records_total") == 1.0

    def test_two_poison_records_in_one_batch(self):
        supervisor, slot, _, poisons, _, _ = make_supervisor(
            supervisor_config(max_restarts=20, snapshot_every=100,
                              poison_threshold=1))
        first, second = Marker("p1"), Marker("p2")
        supervisor.dispatch(0, ["a", first, "b", second, "c"])
        assert poisons == [(first, 0), (second, 0)]
        assert slot.worker.ingested[0] == ["a", "b", "c"]

    def test_degraded_failover_uses_the_fallback(self):
        journal, audit = RecordingJournal(), RecordingAudit()
        supervisor, slot, registry, _, _, spawn_log = make_supervisor(
            supervisor_config(max_restarts=0), journal=journal, audit=audit)
        supervisor.dispatch(0, ["a"])
        supervisor.inject_fault(0, "crash")
        supervisor.dispatch(0, ["b"])
        assert slot.degraded
        assert slot.worker.tag[0] == "fallback"
        assert slot.worker.ingested[0] == ["a", "b"]
        assert registry.counter_value("supervisor.degraded_shards") == 1.0
        assert [event[0] for event in journal.events] == \
            ["failure", "degraded", "restart"]
        assert audit.decisions == [dict(kind="supervision", timestamp=-1.0,
                                        bank_key=(0,),
                                        action="degraded-failover",
                                        pattern=None)]

    def test_checkpoint_resets_the_replay_log(self):
        supervisor, slot, _, _, _, _ = make_supervisor(
            supervisor_config(snapshot_every=100))
        supervisor.dispatch(0, ["a", "b"])
        supervisor.checkpoint_worker(slot)
        assert slot.baselines[0] == ["a", "b"]
        assert slot.log == []
        supervisor.inject_fault(0, "crash")
        supervisor.dispatch(0, ["c"])  # replay = baseline + ["c"] only
        assert slot.worker.ingested[0] == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# (d) degraded-mode failover, end to end
# ---------------------------------------------------------------------------

class TestDegradedFailover:
    def test_exhausted_budget_is_byte_identical(self, cordial, test_stream,
                                                truth, baseline,
                                                clean_fleet):
        expect_service, expect = baseline
        length = len(test_stream)
        schedule = [(length // 4, 0, "crash"), (length // 2, 0, "crash")]
        engine, outcome = run_supervised(
            cordial, test_stream, 2, schedule,
            config=supervisor_config(max_restarts=0))
        assert_equivalent(outcome, clean_fleet(2), expect_service, expect,
                          truth)
        # One worker slot owns both shards at n_jobs=1: both degrade.
        assert engine.supervisor_metrics.counter_value(
            "supervisor.degraded_shards") == 2.0

    def test_degraded_process_fleet(self, cordial, test_stream, baseline):
        """A spawned worker whose budget is exhausted fails over to the
        in-process fallback; no further processes, same output."""
        _, expect = baseline
        schedule = [(len(test_stream) // 3, 0, "crash")]
        engine, outcome = run_supervised(
            cordial, test_stream, 2, schedule, n_jobs=2,
            config=supervisor_config(max_restarts=0, batch_timeout=2.0))
        assert decisions_json(outcome.decisions) == decisions_json(expect)
        assert engine.supervisor_metrics.counter_value(
            "supervisor.degraded_shards") == 1.0


# ---------------------------------------------------------------------------
# (e) supervisor metrics
# ---------------------------------------------------------------------------

class TestSupervisorMetrics:
    def test_healthy_run_exports_zeroes(self, cordial, test_stream):
        engine, _ = run_supervised(cordial, test_stream, 2)
        metrics = engine.supervisor_metrics
        assert metrics is not None
        for name in ("supervisor.restarts_total",
                     "supervisor.poison_records_total",
                     "supervisor.degraded_shards"):
            assert metrics.counter_value(name) == 0.0
        document = metrics.as_dict()
        assert "supervisor.recovery_batches" in document["histograms"]

    def test_unsupervised_engine_has_no_registry(self, cordial):
        engine = ShardedCordialEngine(cordial, 2, max_skew=MAX_SKEW)
        try:
            assert engine.supervisor_metrics is None
            with pytest.raises(RuntimeError, match="requires a supervised"):
                engine.inject_fault(0, "crash")
        finally:
            engine.close()

    def test_counters_render_through_prometheus(self, cordial, test_stream):
        schedule = [(len(test_stream) // 2, 0, "crash")]
        engine, _ = run_supervised(cordial, test_stream, 2, schedule)
        exposition = render_prometheus(engine.supervisor_metrics)
        assert "cordial_supervisor_restarts_total 1" in exposition
        assert "cordial_supervisor_degraded_shards 0" in exposition
        assert "cordial_supervisor_recovery_batches" in exposition


# ---------------------------------------------------------------------------
# chaos plumbing: plans, campaign, CLI
# ---------------------------------------------------------------------------

class TestChaosPlumbing:
    def test_worker_fault_validation_and_roundtrip(self):
        from repro.chaos.faults import WORKER_FAULT_MODES, WorkerFault
        fault = WorkerFault(at_event=5, shard=1, mode="worker_crash")
        assert fault.to_obj() == {"at_event": 5, "shard": 1,
                                  "mode": "worker_crash"}
        assert set(WORKER_FAULT_MODES) == \
            {"worker_crash", "worker_hang", "pipe_garbage"}
        with pytest.raises(ValueError, match="unknown worker fault"):
            WorkerFault(at_event=5, shard=1, mode="worker_meltdown")
        with pytest.raises(ValueError):
            WorkerFault(at_event=0, shard=1, mode="worker_crash")

    def test_plan_roundtrips_supervision_fields(self):
        plan = ChaosPlan(operators=(OperatorSpec("drop", {"rate": 0.01}),),
                         worker_faults_per_run=2, poison_per_run=1)
        clone = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
        assert clone.worker_faults_per_run == 2
        assert clone.poison_per_run == 1
        with pytest.raises(ValueError):
            ChaosPlan(operators=(), worker_faults_per_run=-1)
        with pytest.raises(ValueError):
            ChaosPlan(operators=(), poison_per_run=-1)

    def test_supervised_campaign_runs_clean_and_reruns_identically(
            self, cordial, test_stream, truth, tmp_path):
        plan = ChaosPlan(operators=(), max_skew=MAX_SKEW, kills_per_run=0,
                         worker_faults_per_run=1, poison_per_run=1)
        config = CampaignConfig(runs=2, seed=3)
        stream = test_stream[:600]

        def campaign(subdir):
            workdir = tmp_path / subdir
            workdir.mkdir()
            return run_campaign(cordial, stream, truth, plan, config,
                                str(workdir), shards=2)

        report = campaign("first")
        assert report["ok"] is True
        assert report["violations_total"] == 0
        for run in report["runs"]:
            assert run["supervised"] is True
            assert run["ok"] is True
            assert run["decisions_digest"] == run["twin_decisions_digest"]
            assert run["poison_planted"] >= 0
            assert all(f["mode"] in ("worker_crash", "worker_hang",
                                     "pipe_garbage")
                       for f in run["worker_faults"])
        assert json.dumps(report, sort_keys=True) == \
            json.dumps(campaign("second"), sort_keys=True)


class TestCLI:
    def test_supervise_requires_shards(self):
        from repro.experiments.serve import run_serve_replay
        with pytest.raises(ValueError, match="--supervise needs --shards"):
            run_serve_replay(supervise=True)

    @pytest.mark.parametrize("argv", [
        ["serve-replay", "--poison-threshold", "0"],
        ["serve-replay", "--snapshot-every", "0"],
        ["chaos", "--engine-jobs", "0"],
    ])
    def test_bad_supervision_counts_are_rejected_by_the_parser(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(argv)
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("argv", [
        ["serve-replay", "--supervise"],
        ["chaos", "--worker-faults-per-run", "1"],
        ["chaos", "--poison-per-run", "1"],
    ])
    def test_supervision_flags_need_shards(self, argv):
        with pytest.raises(SystemExit, match="--shards"):
            runner.main(argv)
