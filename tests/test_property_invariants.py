"""Cross-cutting property tests: the invariants that hold the system up.

These complement the per-module tests with randomised checks across
module boundaries: histogram growers vs the exact reference tree, replay
accounting bounds, generator determinism at odd scales, and fuzzing of
the MCE parser.
"""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml._binning import BinMapper
from repro.ml._hist import TreeParams, grow_classification_tree
from repro.ml.tree import DecisionTreeClassifier
from repro.telemetry.mcelog import MCELogError, read_mce_log


class TestHistVsExactEquivalence:
    """On data whose distinct values all fit into bins, histogram splits
    see the same candidate set as exact CART — predictions must agree."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_agreement_on_coarse_data(self, seed):
        rng = np.random.default_rng(seed)
        # few distinct values per feature -> binning is lossless
        X = rng.integers(0, 12, size=(150, 3)).astype(float)
        y = ((X[:, 0] > 5) ^ (X[:, 1] > 7)).astype(np.int64)
        exact = DecisionTreeClassifier(max_depth=4).fit(X, y)
        mapper = BinMapper()
        binned = mapper.fit_transform(X)
        tree = grow_classification_tree(
            binned, y, np.ones(len(y)), 2, int(mapper.n_bins_.max()),
            TreeParams(max_depth=4), np.random.default_rng(0))
        hist_pred = np.argmax(tree.predict_value(binned), axis=1)
        exact_pred = exact.predict(X)
        # identical training accuracy (split sets coincide)
        assert (hist_pred == y).mean() == pytest.approx(
            (exact_pred == y).mean(), abs=0.02)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hist_tree_never_worse_than_majority(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 2))
        y = rng.integers(0, 2, size=80)
        mapper = BinMapper()
        binned = mapper.fit_transform(X)
        tree = grow_classification_tree(
            binned, y, np.ones(80), 2, int(mapper.n_bins_.max()),
            TreeParams(max_depth=6), np.random.default_rng(0))
        predictions = np.argmax(tree.predict_value(binned), axis=1)
        majority = max(np.bincount(y)) / 80
        assert (predictions == y).mean() >= majority - 1e-9


class TestReplayAccounting:
    """Isolation replay results always satisfy the accounting identities."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_icr_result_bounds(self, seed):
        from repro.core.isolation import IsolationReplay
        rng = np.random.default_rng(seed)
        replay = IsolationReplay(spares_per_bank=8)
        banks = [(0, 0, 0, 0, 0, 0, 0, b) for b in range(4)]
        for _ in range(20):
            bank = banks[rng.integers(0, 4)]
            if rng.random() < 0.2:
                replay.isolate_bank(bank, float(rng.uniform(0, 100)))
            else:
                rows = rng.integers(0, 50, size=rng.integers(1, 5))
                replay.isolate_rows(bank, rows.tolist(),
                                    float(rng.uniform(0, 100)))
        truth = {bank: [(float(rng.uniform(0, 120)), int(r))
                        for r in rng.integers(0, 50,
                                              size=rng.integers(0, 6))]
                 for bank in banks}
        result = replay.result(truth)
        assert 0 <= result.covered_rows <= result.total_rows
        assert result.covered_by_bank_sparing <= result.covered_rows
        assert 0.0 <= result.icr <= 1.0
        assert result.icr_row_sparing_only <= result.icr
        assert result.spared_rows <= 8 * len(banks)


class TestGeneratorProperties:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 500), st.sampled_from([0.015, 0.03, 0.05]))
    def test_determinism_across_scales(self, seed, scale):
        from repro.datasets import FleetGenConfig, generate_fleet_dataset
        a = generate_fleet_dataset(FleetGenConfig(scale=scale), seed=seed)
        b = generate_fleet_dataset(FleetGenConfig(scale=scale), seed=seed)
        assert len(a.store) == len(b.store)
        assert a.uer_banks == b.uer_banks

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 100))
    def test_every_uer_bank_has_ground_truth_pattern(self, seed):
        from repro.datasets import FleetGenConfig, generate_fleet_dataset
        dataset = generate_fleet_dataset(FleetGenConfig(scale=0.02),
                                         seed=seed)
        for bank in dataset.uer_banks:
            assert dataset.bank_truth[bank].pattern is not None


class TestMCEFuzzing:
    HEADER = '{"format": "cordial-mce-log", "version": 1}\n'

    @settings(max_examples=40, deadline=None)
    @given(st.text(min_size=1, max_size=80).filter(
        lambda s: s.strip() and "\n" not in s and "\r" not in s))
    def test_garbage_lines_raise_mcelog_error(self, garbage):
        stream = io.StringIO(self.HEADER + garbage + "\n")
        try:
            read_mce_log(stream)
        except MCELogError:
            pass  # expected for anything malformed
        # a line that *is* valid JSON but not a record must also raise
        stream = io.StringIO(self.HEADER + json.dumps({"x": 1}) + "\n")
        with pytest.raises(MCELogError):
            read_mce_log(stream)

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.sampled_from(["ts", "seq", "type", "addr"]),
                           st.one_of(st.none(), st.text(max_size=5),
                                     st.integers(-10, 10))))
    def test_partial_records_never_crash_uncontrolled(self, obj):
        stream = io.StringIO(self.HEADER + json.dumps(obj) + "\n")
        with pytest.raises(MCELogError):
            read_mce_log(stream)


class TestWindowProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(8, 256), st.sampled_from([4, 8, 16]),
           st.integers(0, 32767), st.integers(0, 32767))
    def test_block_of_row_consistent_with_ranges(self, half, block_rows,
                                                 last, row):
        from repro.core.features import CrossRowWindow
        if (2 * half) % block_rows != 0:
            half = block_rows * (half // block_rows)
            if half == 0:
                return
        window = CrossRowWindow(half_window=half, block_rows=block_rows)
        block = window.block_of_row(last, row)
        if block == -1:
            assert abs(row - last) > half or row - last >= half \
                or last - row > half
        else:
            start, end = window.block_range(last, block)
            assert start <= row < end or end == start  # clipped at edges
