"""Tests for per-block decision explanations."""

import numpy as np
import pytest

from repro.core.crossrow import CrossRowPredictor
from repro.core.explain import BlockExplainer
from repro.core.pipeline import collect_triggers


@pytest.fixture(scope="module")
def fitted_parts(small_dataset, bank_split):
    train, test = bank_split
    predictor = CrossRowPredictor(model_name="LightGBM", random_state=0)
    xs, ys = [], []
    for trigger in collect_triggers(small_dataset, train):
        truth = small_dataset.bank_truth[trigger.bank_key]
        if not truth.pattern.is_aggregation:
            continue
        X, y = predictor.build_samples(
            trigger.history, trigger.uer_rows[-1], trigger.timestamp,
            truth.future_uer_rows(trigger.timestamp))
        xs.append(X)
        ys.append(y)
    reference = np.vstack(xs)
    predictor.fit_samples(reference, np.concatenate(ys))
    triggers = collect_triggers(small_dataset, test)
    return predictor, reference, triggers


class TestBlockExplainer:
    def test_explanation_structure(self, fitted_parts):
        predictor, reference, triggers = fitted_parts
        explainer = BlockExplainer(predictor, reference=reference)
        trigger = triggers[0]
        explanation = explainer.explain(trigger.history,
                                        trigger.uer_rows[-1], block=8)
        assert explanation.block == 8
        assert 0.0 <= explanation.probability <= 1.0
        assert len(explanation.contributions) == predictor.featurizer.n_features
        top = explanation.top(3)
        assert len(top) == 3
        assert abs(top[0].delta) >= abs(top[-1].delta)
        assert "dP=" in explanation.format()

    def test_neutralising_everything_matters_somewhere(self, fitted_parts):
        """Across several triggers, at least one feature moves some
        block's probability (the model is not constant)."""
        predictor, reference, triggers = fitted_parts
        explainer = BlockExplainer(predictor, reference=reference)
        moved = 0.0
        for trigger in triggers[:5]:
            explanation = explainer.explain(trigger.history,
                                            trigger.uer_rows[-1], block=7)
            moved += max(abs(c.delta) for c in explanation.contributions)
        assert moved > 0.0

    def test_explain_flagged_matches_prediction(self, fitted_parts):
        predictor, reference, triggers = fitted_parts
        explainer = BlockExplainer(predictor, reference=reference)
        for trigger in triggers[:10]:
            prediction = predictor.predict(trigger.history,
                                           trigger.uer_rows[-1])
            explanations = explainer.explain_flagged(trigger.history,
                                                     trigger.uer_rows[-1])
            assert len(explanations) == int(prediction.flagged.sum())

    def test_explicit_baseline(self, fitted_parts):
        predictor, reference, triggers = fitted_parts
        baseline = np.median(reference, axis=0)
        explainer = BlockExplainer(predictor, baseline=baseline)
        trigger = triggers[0]
        explanation = explainer.explain(trigger.history,
                                        trigger.uer_rows[-1], block=0)
        assert explanation.contributions

    def test_validation(self, fitted_parts):
        predictor, reference, _ = fitted_parts
        with pytest.raises(ValueError):
            BlockExplainer(predictor)  # no reference, no baseline
        with pytest.raises(ValueError):
            BlockExplainer(predictor, baseline=np.zeros(3))
        with pytest.raises(ValueError):
            BlockExplainer(CrossRowPredictor(), reference=reference)
        explainer = BlockExplainer(predictor, reference=reference)
        with pytest.raises(ValueError):
            explainer.explain([], 0, block=99)
