"""Tests for the isolation replay (ICR) and the baselines."""

import numpy as np
import pytest

from repro.core.baselines import InRowPredictor, NeighborRowsBaseline
from repro.core.features import CrossRowWindow
from repro.core.isolation import IsolationReplay
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType

BANK = (0, 0, 0, 0, 0, 0, 0, 0)


def rec(seq, t, row, error_type):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


class TestIsolationReplay:
    def test_icr_counts_only_preemptive_coverage(self):
        replay = IsolationReplay()
        replay.isolate_rows(BANK, [10, 11], timestamp=5.0)
        result = replay.result({BANK: [(6.0, 10),   # covered (spared at 5)
                                       (4.0, 11),   # UER before isolation
                                       (9.0, 12)]})  # never spared
        assert result.covered_rows == 1
        assert result.total_rows == 3
        assert result.icr == pytest.approx(1 / 3)
        assert result.covered_by_bank_sparing == 0

    def test_bank_sparing_coverage(self):
        replay = IsolationReplay()
        replay.isolate_bank(BANK, timestamp=5.0)
        result = replay.result({BANK: [(6.0, 1), (4.0, 2)]})
        assert result.covered_rows == 1
        assert result.covered_by_bank_sparing == 1
        assert result.icr_row_sparing_only == 0.0

    def test_exhaustion_is_soft_and_counted(self):
        replay = IsolationReplay(spares_per_bank=4)
        spared = replay.isolate_rows(BANK, range(10), timestamp=1.0)
        assert spared == 4
        assert replay.truncated_requests == 1
        assert replay.truncated_rows == 6
        assert replay.exhausted_requests == 1  # deprecated alias

    def test_duplicates_not_conflated_with_truncation(self):
        """Regression: re-sparing already-spared rows is not exhaustion."""
        replay = IsolationReplay(spares_per_bank=64)
        assert replay.isolate_rows(BANK, [1, 2, 3], timestamp=1.0) == 3
        # All three rows already spared: zero fresh rows, zero truncation.
        assert replay.isolate_rows(BANK, [1, 2, 3], timestamp=2.0) == 0
        assert replay.truncated_requests == 0
        assert replay.truncated_rows == 0
        assert replay.duplicate_requests == 1
        assert replay.duplicate_rows == 3

    def test_in_request_duplicates_counted_once(self):
        replay = IsolationReplay(spares_per_bank=4)
        assert replay.isolate_rows(BANK, [5, 5, 6], timestamp=1.0) == 2
        assert replay.duplicate_rows == 1
        assert replay.truncated_requests == 0

    def test_mixed_duplicates_and_budget_truncation(self):
        replay = IsolationReplay(spares_per_bank=4)
        replay.isolate_rows(BANK, [0, 1], timestamp=1.0)
        # 2 duplicates + 4 fresh rows against 2 remaining spares.
        spared = replay.isolate_rows(BANK, [0, 1, 2, 3, 4, 5], timestamp=2.0)
        assert spared == 2
        assert replay.duplicate_rows == 2
        assert replay.truncated_requests == 1
        assert replay.truncated_rows == 2  # only the budget-dropped rows

    def test_costs_reported(self):
        replay = IsolationReplay()
        replay.isolate_rows(BANK, [1, 2, 3], timestamp=1.0)
        replay.isolate_bank((9,) * 8, timestamp=1.0)
        result = replay.result({})
        assert result.spared_rows == 3
        assert result.spared_banks == 1
        assert result.icr == 0.0


class TestNeighborRowsBaseline:
    def test_rows_around_excludes_self(self):
        baseline = NeighborRowsBaseline()
        rows = baseline.rows_around(100)
        assert len(rows) == 8
        assert 100 not in rows
        assert rows == [96, 97, 98, 99, 101, 102, 103, 104]

    def test_rows_around_clips_at_edges(self):
        baseline = NeighborRowsBaseline(total_rows=32768)
        rows = baseline.rows_around(1)
        assert all(0 <= r < 32768 for r in rows)
        assert len(rows) < 8

    def test_replay_catches_adjacent_future_uer(self):
        baseline = NeighborRowsBaseline()
        events = [rec(0, 1.0, 100, ErrorType.UER),
                  rec(1, 2.0, 102, ErrorType.UER),   # within +-4 of 100
                  rec(2, 3.0, 300, ErrorType.UER)]   # far away
        env = baseline.replay({BANK: events})
        result = env.result({BANK: [(1.0, 100), (2.0, 102), (3.0, 300)]})
        assert result.covered_rows == 1

    def test_block_prediction_flags_central_blocks(self):
        baseline = NeighborRowsBaseline()
        window = CrossRowWindow()
        flagged = baseline.block_prediction(1000, window)
        assert flagged.sum() == 2
        assert flagged[7] and flagged[8]


class TestInRowPredictor:
    def test_predicted_rows(self):
        predictor = InRowPredictor(min_precursors=2)
        events = [rec(0, 1.0, 5, ErrorType.CE),
                  rec(1, 2.0, 5, ErrorType.CE),
                  rec(2, 3.0, 6, ErrorType.CE)]
        assert predictor.predicted_rows(events) == {5}

    def test_coverage_in_row_only(self):
        predictor = InRowPredictor()
        events = [rec(0, 1.0, 5, ErrorType.CE),
                  rec(1, 2.0, 5, ErrorType.UER),   # predictable
                  rec(2, 3.0, 7, ErrorType.UER)]   # sudden
        covered, total = predictor.coverage(events)
        assert (covered, total) == (1, 2)

    def test_coverage_requires_precursor_before_uer(self):
        predictor = InRowPredictor()
        events = [rec(0, 1.0, 5, ErrorType.UER),
                  rec(1, 2.0, 5, ErrorType.CE)]
        covered, total = predictor.coverage(events)
        assert (covered, total) == (0, 1)

    def test_fleet_level_coverage_matches_table1_row_ratio(self,
                                                           small_dataset):
        """In-row prediction ceiling ~ the row-level predictable ratio."""
        predictor = InRowPredictor()
        covered = total = 0
        for bank_key in small_dataset.uer_banks:
            events = small_dataset.store.bank_events(bank_key)
            c, t = predictor.coverage(events)
            covered += c
            total += t
        assert total > 100
        assert covered / total < 0.15  # paper: 4.39 %
