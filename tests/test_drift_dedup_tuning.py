"""Tests for drift monitoring, stream compaction and grid search."""

import numpy as np
import pytest

from repro.core.drift import (PSI_RETRAIN, PSI_STABLE, FeatureDriftMonitor,
                              population_stability_index)
from repro.ml.tuning import grid_search
from repro.ml.tree import DecisionTreeClassifier
from repro.telemetry.dedup import StreamCompactor, compact_records
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType


def rec(seq, t, row=5, column=0, error_type=ErrorType.CE):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0,
                            row=row, column=column)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


class TestPSI:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=5000)
        b = rng.normal(size=5000)
        assert population_stability_index(a, b) < 0.02

    def test_shifted_distribution_flags(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, size=5000)
        b = rng.normal(2, 1, size=5000)
        assert population_stability_index(a, b) > PSI_RETRAIN

    def test_small_inputs_rejected(self):
        with pytest.raises(ValueError):
            population_stability_index(np.ones(3), np.ones(5), n_bins=10)
        with pytest.raises(ValueError):
            population_stability_index(np.arange(20.0), np.array([]))

    def test_constant_feature_stable(self):
        a = np.zeros(100)
        b = np.zeros(30)
        assert population_stability_index(a, b) < 0.02


class TestDriftMonitor:
    def _monitor(self):
        rng = np.random.default_rng(2)
        reference = rng.normal(size=(500, 3))
        return FeatureDriftMonitor(reference, ["a", "b", "c"])

    def test_stable_on_same_distribution(self):
        monitor = self._monitor()
        rng = np.random.default_rng(3)
        report = monitor.score(rng.normal(size=(300, 3)))
        assert report.status == "stable"
        assert report.drifting_features() == []

    def test_detects_single_feature_shift(self):
        monitor = self._monitor()
        rng = np.random.default_rng(4)
        live = rng.normal(size=(300, 3))
        live[:, 1] += 3.0
        report = monitor.score(live)
        assert report.worst_feature == "b"
        assert report.status == "retrain"
        assert report.drifting_features() == ["b"]
        assert "PSI" in report.format()

    def test_scenario_shift_is_visible(self, small_dataset):
        """The sudden-heavy scenario shifts the pattern features enough
        for the monitor to notice."""
        from repro.core.features import BankPatternFeaturizer
        from repro.core.pipeline import collect_triggers
        from repro.datasets import generate_fleet_dataset
        from repro.faults.scenarios import SCENARIOS
        featurizer = BankPatternFeaturizer()
        reference = [t.history for t in collect_triggers(
            small_dataset, small_dataset.uer_banks)]
        monitor = FeatureDriftMonitor.from_triggers(featurizer, reference)
        shifted = generate_fleet_dataset(SCENARIOS["ce-storm"](0.12),
                                         seed=43)
        live = [t.history for t in collect_triggers(shifted,
                                                    shifted.uer_banks)]
        report = monitor.score(featurizer.extract_many(live))
        assert report.status in ("drifting", "retrain")

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureDriftMonitor(np.zeros((5, 2)), ["a"])
        monitor = self._monitor()
        with pytest.raises(ValueError):
            monitor.score(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            monitor.score(np.zeros((5, 99)))


class TestStreamCompactor:
    def test_suppresses_repeats_within_holdoff(self):
        events = [rec(0, 0.0), rec(1, 10.0), rec(2, 5000.0)]
        kept, stats = compact_records(events, holdoff_s=3600.0)
        assert [r.sequence for r in kept] == [0, 2]
        assert stats.suppressed == 1
        assert stats.suppressed_by_type == {"CE": 1}

    def test_different_cells_not_suppressed(self):
        events = [rec(0, 0.0, row=1), rec(1, 1.0, row=2),
                  rec(2, 2.0, row=1, column=3)]
        kept, stats = compact_records(events)
        assert len(kept) == 3

    def test_uer_never_dropped(self):
        events = [rec(0, 0.0, error_type=ErrorType.UER),
                  rec(1, 1.0, error_type=ErrorType.UER)]
        kept, _ = compact_records(events)
        assert len(kept) == 2

    def test_uer_droppable_when_configured(self):
        compactor = StreamCompactor(holdoff_s=100.0, never_drop_uer=False)
        kept = list(compactor.compact([
            rec(0, 0.0, error_type=ErrorType.UER),
            rec(1, 1.0, error_type=ErrorType.UER)]))
        assert len(kept) == 1

    def test_first_events_always_survive(self, small_dataset):
        """Compaction must not change distinct-row or first-event
        analyses."""
        from repro.telemetry.store import ErrorStore
        kept, stats = compact_records(small_dataset.store,
                                      holdoff_s=7 * 86400.0)
        compacted = ErrorStore(kept)
        for bank in small_dataset.uer_banks[:30]:
            original = [r.row for r in
                        small_dataset.store.uer_rows_of_bank(bank)]
            after = [r.row for r in compacted.uer_rows_of_bank(bank)]
            assert original == after
        assert stats.ratio < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamCompactor(holdoff_s=-1)

    def test_holdoff_boundary_emits(self):
        """A repeat exactly holdoff_s after the last emission is kept:
        suppression requires strictly less than the holdoff."""
        compactor = StreamCompactor(holdoff_s=100.0)
        assert compactor.offer(rec(0, 0.0))
        assert not compactor.offer(rec(1, 99.0))     # strictly inside
        assert compactor.offer(rec(2, 100.0))        # exactly on it
        assert compactor.stats.suppressed == 1

    def test_suppression_table_is_bounded(self):
        """Long streams of distinct short-lived cells must not grow the
        table without bound: entries older than the holdoff behind the
        stream frontier are evicted."""
        compactor = StreamCompactor(holdoff_s=10.0)
        n = 8 * StreamCompactor.MIN_SWEEP_SIZE
        for i in range(n):
            compactor.offer(rec(i, float(i), row=i % 32768,
                                column=i // 32768))
        assert compactor.stats.emitted == n
        assert compactor.evicted > 0
        # At ~1 distinct cell per second only ~holdoff_s entries are
        # live; the table stays within a small multiple of that.
        assert compactor.live_keys <= 2 * StreamCompactor.MIN_SWEEP_SIZE
        assert compactor.live_keys + compactor.evicted == n

    def test_eviction_never_changes_decisions(self):
        """Evicted entries are exactly those that can never suppress
        again, so a bounded compactor emits the same stream as an
        unbounded one."""
        rng = np.random.default_rng(17)
        events = [rec(i, float(t), row=int(r))
                  for i, (t, r) in enumerate(
                      zip(np.sort(rng.uniform(0, 5000.0, size=6000)),
                          rng.integers(0, 3000, size=6000)))]

        class Unbounded(StreamCompactor):
            def _sweep(self):
                self._sweep_at = float("inf")

        bounded = StreamCompactor(holdoff_s=50.0)
        reference = Unbounded(holdoff_s=50.0)
        kept_bounded = [r.sequence for r in bounded.compact(events)]
        kept_reference = [r.sequence for r in reference.compact(events)]
        assert kept_bounded == kept_reference
        assert bounded.evicted > 0
        assert bounded.live_keys < reference.live_keys

    def test_metrics_exported(self):
        from repro.telemetry.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        compactor = StreamCompactor(holdoff_s=10.0, metrics=metrics)
        for i in range(2 * StreamCompactor.MIN_SWEEP_SIZE):
            compactor.offer(rec(i, float(i), row=i % 32768))
        counters = metrics.as_dict()["counters"]
        gauges = metrics.as_dict()["gauges"]
        assert counters["compactor.evicted_keys"] == compactor.evicted
        assert gauges["compactor.live_keys"]["value"] == \
            compactor.live_keys
        assert compactor.evicted > 0


class TestGridSearch:
    def test_finds_adequate_depth(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 3))
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)  # needs depth 2
        result = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            {"max_depth": [1, 2, 4]}, X, y, n_splits=3, seed=0)
        assert result.best_params["max_depth"] in (2, 4)
        assert result.best_score > 0.9
        assert len(result.results) == 3
        # refit model predicts on new data
        assert result.best_model.predict(X[:5]).shape == (5,)

    def test_ranked_order(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(int)
        result = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            {"max_depth": [1, 3]}, X, y)
        ranked = result.ranked()
        assert ranked[0][1] >= ranked[-1][1]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_search(lambda: None, {}, np.zeros((4, 1)), [0, 1, 0, 1])
