"""Tests for feature-family tagging and the masked featurizer."""

import numpy as np
import pytest

from repro.core.features import BankPatternFeaturizer, FamilyMaskedFeaturizer
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType


def history():
    def rec(seq, t, row, error_type):
        address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                                pseudo_channel=0, bank_group=0, bank=0,
                                row=row, column=0)
        return ErrorRecord(timestamp=t, sequence=seq, address=address,
                           error_type=error_type)
    return [rec(0, 10.0, 100, ErrorType.CE),
            rec(1, 30.0, 110, ErrorType.UER),
            rec(2, 40.0, 150, ErrorType.UER),
            rec(3, 50.0, 190, ErrorType.UER)]


class TestFamilyTagging:
    def test_every_feature_has_a_family(self):
        featurizer = BankPatternFeaturizer()
        for name in featurizer.feature_names():
            assert BankPatternFeaturizer.family_of(name) in (
                "spatial", "temporal", "count")

    def test_known_examples(self):
        tag = BankPatternFeaturizer.family_of
        assert tag("uer_row_min") == "spatial"
        assert tag("uer_gap_ratio") == "spatial"
        assert tag("ce_timediff_min") == "temporal"
        assert tag("trigger_to_last_error") == "temporal"
        assert tag("ce_total") == "count"
        assert tag("ueo_before_first_uer") == "count"

    def test_all_three_families_present(self):
        featurizer = BankPatternFeaturizer()
        families = {BankPatternFeaturizer.family_of(n)
                    for n in featurizer.feature_names()}
        assert families == {"spatial", "temporal", "count"}


class TestFamilyMaskedFeaturizer:
    def test_subset_columns_match_base(self):
        base = BankPatternFeaturizer()
        masked = FamilyMaskedFeaturizer(["spatial"], base=base)
        full = base.extract(history())
        subset = masked.extract(history())
        names = base.feature_names()
        expected = [full[i] for i, name in enumerate(names)
                    if BankPatternFeaturizer.family_of(name) == "spatial"]
        assert np.allclose(subset, expected)
        assert masked.n_features == len(expected)
        assert len(masked.feature_names()) == masked.n_features

    def test_union_of_families_is_everything(self):
        base = BankPatternFeaturizer()
        total = sum(FamilyMaskedFeaturizer([family]).n_features
                    for family in ("spatial", "temporal", "count"))
        assert total == base.n_features

    def test_extract_many_shape(self):
        masked = FamilyMaskedFeaturizer(["count"])
        matrix = masked.extract_many([history(), history()])
        assert matrix.shape == (2, masked.n_features)

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            FamilyMaskedFeaturizer(["astral"])
        with pytest.raises(ValueError):
            FamilyMaskedFeaturizer([])
