"""Tests for the sparing controllers (row / bank / page offlining)."""

import pytest
from hypothesis import given, strategies as st

from repro.hbm.sparing import (BankSparingController, PageOfflineManager,
                               RowSparingController, SparingExhaustedError,
                               covered_rows)

BANK = ("n", 0, 0, 0, 0, 0, 0, 0)


class TestRowSparing:
    def test_spare_and_query(self):
        ctrl = RowSparingController(spares_per_bank=4)
        assert ctrl.spare_row(BANK, 10, timestamp=5.0)
        assert ctrl.is_isolated(BANK, 10)
        assert ctrl.isolation_time(BANK, 10) == 5.0
        assert not ctrl.is_isolated(BANK, 11)

    def test_idempotent(self):
        ctrl = RowSparingController(spares_per_bank=4)
        assert ctrl.spare_row(BANK, 10, 5.0)
        assert not ctrl.spare_row(BANK, 10, 9.0)
        # first isolation time wins
        assert ctrl.isolation_time(BANK, 10) == 5.0

    def test_budget_exhaustion_raises(self):
        ctrl = RowSparingController(spares_per_bank=2)
        ctrl.spare_row(BANK, 1, 0.0)
        ctrl.spare_row(BANK, 2, 0.0)
        with pytest.raises(SparingExhaustedError):
            ctrl.spare_row(BANK, 3, 0.0)

    def test_bulk_spare_truncates_softly(self):
        ctrl = RowSparingController(spares_per_bank=3)
        spared = ctrl.spare_rows(BANK, range(10), timestamp=1.0)
        assert spared == 3
        assert ctrl.remaining(BANK) == 0

    def test_time_aware_coverage(self):
        ctrl = RowSparingController()
        ctrl.spare_row(BANK, 10, timestamp=5.0)
        assert ctrl.is_isolated(BANK, 10, at_time=6.0)
        assert not ctrl.is_isolated(BANK, 10, at_time=5.0)  # strict
        assert not ctrl.is_isolated(BANK, 10, at_time=4.0)

    def test_budgets_are_per_bank(self):
        ctrl = RowSparingController(spares_per_bank=1)
        other = BANK[:-1] + (1,)
        ctrl.spare_row(BANK, 1, 0.0)
        assert ctrl.spare_row(other, 1, 0.0)
        assert ctrl.total_spared_rows() == 2

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_spared_count_never_exceeds_budget(self, rows):
        ctrl = RowSparingController(spares_per_bank=8)
        ctrl.spare_rows(BANK, rows, timestamp=0.0)
        assert ctrl.spared_row_count(BANK) <= 8
        assert ctrl.spared_row_count(BANK) <= len(set(rows))


class TestBankSparing:
    def test_spare_and_query(self):
        ctrl = BankSparingController()
        assert ctrl.spare_bank(BANK, 3.0)
        assert not ctrl.spare_bank(BANK, 9.0)
        assert ctrl.isolation_time(BANK) == 3.0
        assert ctrl.is_isolated(BANK, at_time=4.0)
        assert not ctrl.is_isolated(BANK, at_time=3.0)

    def test_counts(self):
        ctrl = BankSparingController()
        ctrl.spare_bank(BANK, 0.0)
        ctrl.spare_bank(BANK[:-1] + (1,), 0.0)
        assert ctrl.spared_bank_count() == 2


class TestPageOfflining:
    def test_rows_smaller_than_pages_share_one_page(self):
        mgr = PageOfflineManager(page_bytes=4096, row_bytes=1024)
        assert mgr.pages_for_row(0) == [0]
        assert mgr.pages_for_row(3) == [0]
        assert mgr.pages_for_row(4) == [1]

    def test_rows_larger_than_pages_span_many(self):
        mgr = PageOfflineManager(page_bytes=1024, row_bytes=4096)
        assert mgr.pages_for_row(1) == [4, 5, 6, 7]

    def test_offline_row_and_query(self):
        mgr = PageOfflineManager()
        assert mgr.offline_row(BANK, 8, timestamp=2.0)
        assert mgr.is_row_offline(BANK, 8, at_time=3.0)
        assert not mgr.is_row_offline(BANK, 8, at_time=2.0)

    def test_locked_page_fails(self):
        mgr = PageOfflineManager()
        assert not mgr.offline_row(BANK, 8, timestamp=2.0, locked=True)
        assert mgr.failed_requests == 1
        assert not mgr.is_row_offline(BANK, 8)


class TestCoveredRows:
    def test_row_and_bank_coverage(self):
        row_ctrl = RowSparingController()
        bank_ctrl = BankSparingController()
        row_ctrl.spare_row(BANK, 5, timestamp=1.0)
        bank_ctrl.spare_bank(BANK, timestamp=10.0)
        uer_rows = [(5, 2.0),    # covered by row sparing at t=1
                    (6, 5.0),    # not covered (bank spared later)
                    (7, 11.0)]   # covered by bank sparing
        covered = covered_rows(row_ctrl, bank_ctrl, BANK, uer_rows)
        assert covered == {5, 7}
