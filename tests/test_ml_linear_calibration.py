"""Tests for logistic regression, scaling, and probability calibration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.calibration import (IsotonicCalibrator, PlattCalibrator,
                                  brier_score, expected_calibration_error)
from repro.ml.linear import LogisticRegressionClassifier, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(500, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestLogisticRegression:
    def test_linearly_separable(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        y = (X @ np.array([2.0, -1.0, 0.5]) > 0).astype(int)
        model = LogisticRegressionClassifier(reg_lambda=0.01).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_recovers_coefficient_signs(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(2000, 2))
        y = (X[:, 0] - 2 * X[:, 1] > 0).astype(int)
        model = LogisticRegressionClassifier(reg_lambda=0.1).fit(X, y)
        assert model.coef_[0, 0] > 0 > model.coef_[0, 1]

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(600, 2))
        y = (X[:, 0] > 0).astype(int) + (X[:, 1] > 0).astype(int)
        model = LogisticRegressionClassifier().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.7
        proba = model.predict_proba(X[:20])
        assert proba.shape == (20, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_regularisation_shrinks_weights(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        loose = LogisticRegressionClassifier(reg_lambda=0.001).fit(X, y)
        tight = LogisticRegressionClassifier(reg_lambda=100.0).fit(X, y)
        assert (np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum())

    def test_sample_weight(self):
        X = np.array([[0.0], [0.0]])
        y = np.array([0, 1])
        model = LogisticRegressionClassifier(scale_features=False)
        model.fit(X, y, sample_weight=[1.0, 20.0])
        assert model.predict_proba(X)[0, 1] > 0.8

    def test_string_labels(self):
        X = np.array([[-1.0], [1.0]] * 30)
        y = np.array(["neg", "pos"] * 30)
        model = LogisticRegressionClassifier().fit(X, y)
        assert set(model.predict(X)) == {"neg", "pos"}

    def test_trees_beat_linear_on_lattice_task(self):
        """The cross-row task is non-linear (lattice residuals); trees
        should beat the linear baseline — the paper's model-choice
        rationale."""
        from repro.ml.forest import RandomForestClassifier
        rng = np.random.default_rng(5)
        X = rng.uniform(-64, 64, size=(1500, 2))
        pitch = 24
        y = (np.abs(np.abs(X[:, 0]) % pitch) < 4).astype(int)
        linear = LogisticRegressionClassifier().fit(X[:1000], y[:1000])
        forest = RandomForestClassifier(n_estimators=40,
                                        random_state=0).fit(X[:1000],
                                                            y[:1000])
        acc_linear = (linear.predict(X[1000:]) == y[1000:]).mean()
        acc_forest = (forest.predict(X[1000:]) == y[1000:]).mean()
        assert acc_forest > acc_linear + 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(reg_lambda=-1)
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit(np.zeros((3, 1)), [1, 1, 1])
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.zeros((1, 1)))


class TestPlatt:
    def test_identity_on_calibrated_scores(self):
        rng = np.random.default_rng(6)
        scores = rng.normal(size=4000)
        p_true = 1 / (1 + np.exp(-scores))
        labels = rng.random(4000) < p_true
        cal = PlattCalibrator().fit(scores, labels)
        assert cal.a_ == pytest.approx(1.0, abs=0.15)
        assert cal.b_ == pytest.approx(0.0, abs=0.15)

    def test_fixes_scaled_scores(self):
        rng = np.random.default_rng(7)
        scores = rng.normal(size=4000)
        p_true = 1 / (1 + np.exp(-2.5 * scores))
        labels = rng.random(4000) < p_true
        cal = PlattCalibrator().fit(scores, labels)
        calibrated = cal.transform(scores)
        raw = 1 / (1 + np.exp(-scores))
        assert brier_score(calibrated, labels) < brier_score(raw, labels)

    def test_monotone(self):
        rng = np.random.default_rng(8)
        cal = PlattCalibrator().fit(rng.normal(size=200),
                                    rng.random(200) < 0.5)
        s = np.linspace(-3, 3, 50)
        out = cal.transform(s)
        assert (np.diff(out) >= -1e-12).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit([], [])


class TestIsotonic:
    def test_perfectly_separable(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        cal = IsotonicCalibrator().fit(scores, labels)
        out = cal.transform([0.15, 0.85])
        assert out[0] < 0.5 < out[1]

    def test_monotone_output(self):
        rng = np.random.default_rng(9)
        scores = rng.random(500)
        labels = rng.random(500) < scores
        cal = IsotonicCalibrator().fit(scores, labels)
        out = cal.transform(np.linspace(0, 1, 100))
        assert (np.diff(out) >= -1e-12).all()

    def test_pava_pools_violations(self):
        # decreasing labels must pool to one constant block
        scores = np.array([1.0, 2.0, 3.0])
        labels = np.array([1.0, 0.0, 0.0])
        cal = IsotonicCalibrator().fit(scores, labels)
        out = cal.transform(scores)
        assert np.allclose(out, out[0])
        assert out[0] == pytest.approx(1 / 3)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_fit_never_worsens_brier_much(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(300)
        labels = rng.random(300) < np.clip(scores + rng.normal(0, .2, 300),
                                           0, 1)
        cal = IsotonicCalibrator().fit(scores, labels)
        # in-sample isotonic fit is the least-squares monotone fit:
        assert (brier_score(cal.transform(scores), labels)
                <= brier_score(scores, labels) + 1e-9)


class TestCalibrationMetrics:
    def test_brier_hand_example(self):
        assert brier_score([1.0, 0.0], [1, 0]) == 0.0
        assert brier_score([0.5, 0.5], [1, 0]) == pytest.approx(0.25)

    def test_ece_perfect_calibration(self):
        rng = np.random.default_rng(10)
        p = rng.random(20000)
        y = rng.random(20000) < p
        assert expected_calibration_error(p, y) < 0.03

    def test_ece_overconfident(self):
        p = np.full(1000, 0.99)
        y = np.zeros(1000)
        assert expected_calibration_error(p, y) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            brier_score([0.5], [1, 0])
        with pytest.raises(ValueError):
            expected_calibration_error([], [])
