"""Tests for the dependency-free metrics registry."""

import json

import pytest

from repro.telemetry.metrics import (EXPORT_VERSION, Counter, Gauge,
                                    Histogram, MetricsRegistry)


class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_tracks_high_water_mark(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max_value == 5.0
        gauge.inc(-1.0)
        assert gauge.value == 1.0
        gauge.inc(10.0)
        assert gauge.max_value == 11.0


class TestHistogram:
    def test_bucketing_and_mean(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_cumulative_counts_are_prefix_sums(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]
        assert histogram.cumulative_counts() == [2, 3, 4]
        # The +inf entry always equals the total count.
        assert histogram.cumulative_counts()[-1] == histogram.count

    def test_cumulative_counts_empty(self):
        assert Histogram(buckets=(1.0,)).cumulative_counts() == [0, 0]


class TestMetricsRegistry:
    def test_get_or_create_shares_series(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc()
        assert registry.counter_value("events") == 2.0
        assert registry.counter_value("never_touched") == 0.0

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("dead_letters", labels={"reason": "late"}).inc()
        registry.counter("dead_letters",
                         labels={"reason": "malformed"}).inc(3)
        assert registry.counter_value("dead_letters",
                                      labels={"reason": "late"}) == 1.0
        assert registry.counter_value("dead_letters",
                                      labels={"reason": "malformed"}) == 3.0
        # Label order never matters: keys are sorted into the series name.
        document = registry.as_dict()
        assert "dead_letters{reason=late}" in document["counters"]

    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("op_seconds"):
            pass
        histogram = registry.histogram("op_seconds")
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_as_dict_is_deterministic_json(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b").inc(2)
            registry.counter("a").inc(1)
            registry.gauge("depth").set(7)
            return registry

        a = json.dumps(build().as_dict(), sort_keys=True)
        b = json.dumps(build().as_dict(), sort_keys=True)
        assert a == b

    def test_exclude_histograms(self):
        registry = MetricsRegistry()
        with registry.timer("latency"):
            pass
        assert "histograms" not in registry.as_dict(include_histograms=False)

    def test_restore_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(5)
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(1)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        document = json.loads(json.dumps(registry.as_dict()))

        restored = MetricsRegistry().restore(document)
        assert restored.as_dict() == registry.as_dict()
        # Restored metrics keep accumulating.
        restored.counter("events").inc()
        assert restored.counter_value("events") == 6.0
        assert restored.gauge("depth").max_value == 3

    def test_export_is_versioned_with_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        document = registry.as_dict()
        assert document["version"] == EXPORT_VERSION == 2
        exported = document["histograms"]["lat"]
        assert exported["counts"] == [1, 1, 0]
        assert exported["cumulative"] == [1, 2, 2]

    def test_version1_document_restores(self):
        # A pre-version export: no "version", no "cumulative".
        document = {
            "counters": {"events": 5.0},
            "gauges": {"depth": {"value": 1.0, "max": 3.0}},
            "histograms": {"lat": {"buckets": [1.0], "counts": [2, 1],
                                   "sum": 3.5, "count": 3}},
        }
        restored = MetricsRegistry().restore(document)
        assert restored.counter_value("events") == 5.0
        exported = restored.as_dict()
        assert exported["version"] == 2
        assert exported["histograms"]["lat"]["cumulative"] == [2, 3]

    def test_restore_replaces_in_place_keeping_references(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(2)
        same = registry.restore(registry.as_dict())
        assert same is registry
        assert registry.counter_value("events") == 2.0
