"""Exact equivalence of the fast feature paths against the scalar extractor.

The vectorized batch path (``extract_many`` / ``extract_blocks``) and the
incremental online path (:class:`IncrementalFeatureState`) are performance
rewrites; they must be *bit-identical* to the original scalar extraction,
not merely close.  Every assertion here is exact equality on float64
arrays — no tolerances — over real generated-fleet histories, including
the degenerate ones (single event, all-UER, duplicate UER rows).
"""

import json

import numpy as np
import pytest

from repro.core.features import (BankPatternFeaturizer, CrossRowFeaturizer,
                                 pack_history)
from repro.core.incremental import IncrementalFeatureState
from repro.core.online import CordialService
from repro.core.pipeline import Cordial, collect_snapshots, collect_triggers
from repro.experiments.serve import serve_stream
from repro.telemetry.events import ErrorType


def decisions_json(decisions):
    return json.dumps([d.to_obj() for d in decisions], sort_keys=True)


@pytest.fixture(scope="module")
def triggers(small_dataset):
    return collect_triggers(small_dataset, small_dataset.uer_banks)


class TestBatchEquivalence:
    def test_extract_many_matches_scalar_loop(self, triggers):
        featurizer = BankPatternFeaturizer()
        histories = [t.history for t in triggers]
        batch = featurizer.extract_many(histories)
        scalar = np.vstack([featurizer.extract(h) for h in histories])
        assert batch.dtype == scalar.dtype == np.float64
        assert np.array_equal(batch, scalar)  # bitwise, no tolerance

    def test_extract_packed_matches_scalar_per_history(self, triggers):
        featurizer = BankPatternFeaturizer()
        for trigger in triggers:
            packed = featurizer.extract_packed(*pack_history(trigger.history))
            assert np.array_equal(packed, featurizer.extract(trigger.history))

    def test_extract_blocks_matches_scalar(self, triggers):
        featurizer = CrossRowFeaturizer()
        for trigger in triggers:
            last = trigger.uer_rows[-1]
            fast = featurizer.extract_blocks(trigger.history, last)
            slow = featurizer.extract_blocks_scalar(trigger.history, last)
            assert np.array_equal(fast, slow)

    def test_extract_many_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            BankPatternFeaturizer().extract_many([])


class TestIncrementalEquivalence:
    def test_prefix_fold_matches_scalar_at_every_snapshot(self,
                                                          small_dataset):
        """Folding events one at a time reproduces every re-prediction's
        features exactly — the invariant the online service relies on."""
        featurizer = CrossRowFeaturizer()
        checked = 0
        for bank in small_dataset.uer_banks[:40]:
            snapshots = collect_snapshots(small_dataset, bank)
            if not snapshots:
                continue
            state = IncrementalFeatureState()
            history = snapshots[-1].history  # longest prefix
            position = 0
            for snapshot in snapshots:
                while position < len(snapshot.history):
                    assert history[position] is snapshot.history[position]
                    state.update(history[position])
                    position += 1
                last = snapshot.uer_rows[-1]
                fast = featurizer.extract_from_aggregates(
                    state.aggregates(), last)
                slow = featurizer.extract_blocks_scalar(
                    snapshot.history, last)
                assert np.array_equal(fast, slow)
                checked += 1
        assert checked > 50  # the fleet really exercised the path

    def test_from_history_matches_incremental_updates(self, triggers):
        for trigger in triggers[:50]:
            folded = IncrementalFeatureState()
            for record in trigger.history:
                folded.update(record)
            built = IncrementalFeatureState.from_history(trigger.history)
            assert built.to_dict() == folded.to_dict()

    def test_state_dict_round_trip(self, triggers):
        featurizer = CrossRowFeaturizer()
        for trigger in triggers[:50]:
            state = IncrementalFeatureState.from_history(trigger.history)
            restored = IncrementalFeatureState.from_dict(state.to_dict())
            last = trigger.uer_rows[-1]
            assert np.array_equal(
                featurizer.extract_from_aggregates(state.aggregates(), last),
                featurizer.extract_from_aggregates(restored.aggregates(),
                                                   last))


class TestServiceEquivalence:
    @pytest.fixture(scope="class")
    def cordial(self, small_dataset, bank_split):
        train, _ = bank_split
        model = Cordial(model_name="LightGBM", random_state=0)
        model.fit(small_dataset, train)
        return model

    def test_incremental_service_matches_recompute(self, cordial,
                                                   small_dataset,
                                                   bank_split):
        """Identical decisions and ICR whether the service folds features
        incrementally or recomputes them from the full history."""
        _, test = bank_split
        test_set = set(test)
        stream = [r for r in small_dataset.store if r.bank_key in test_set]
        truth = {bank: small_dataset.bank_truth[bank].uer_row_sequence
                 for bank in test
                 if small_dataset.bank_truth[bank].uer_row_sequence}

        fast = CordialService(cordial, incremental_features=True)
        slow = CordialService(cordial, incremental_features=False)
        _, got = serve_stream(fast, stream)
        _, expect = serve_stream(slow, stream)

        assert decisions_json(got) == decisions_json(expect)
        assert fast.coverage(truth) == slow.coverage(truth)
        assert fast.replay.result(truth) == slow.replay.result(truth)
        assert any(r.error_type is ErrorType.UER for r in stream)
