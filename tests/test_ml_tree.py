"""Tests for the exact CART trees (the reference implementation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import (DecisionTreeClassifier, DecisionTreeRegressor,
                           resolve_max_features)


class TestResolveMaxFeatures:
    def test_variants(self):
        assert resolve_max_features(None, 10) == 10
        assert resolve_max_features("sqrt", 16) == 4
        assert resolve_max_features("log2", 16) == 4
        assert resolve_max_features(3, 10) == 3
        assert resolve_max_features(0.5, 10) == 5

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            resolve_max_features("cube", 10)
        with pytest.raises(ValueError):
            resolve_max_features(0, 10)
        with pytest.raises(ValueError):
            resolve_max_features(1.5, 10)
        with pytest.raises(TypeError):
            resolve_max_features([], 10)


class TestClassifier:
    def test_separable_1d(self):
        X = [[0.0], [1.0], [2.0], [3.0]]
        y = [0, 0, 1, 1]
        model = DecisionTreeClassifier().fit(X, y)
        assert list(model.predict([[0.5], [2.5]])) == [0, 1]
        assert model.predict_proba([[0.5]])[0, 0] == 1.0

    def test_conjunction_needs_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=float)
        y = (X[:, 0].astype(int) & X[:, 1].astype(int))
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert (shallow.predict(X) == y).mean() < 1.0
        assert (deep.predict(X) == y).mean() == 1.0

    def test_zero_gain_split_not_taken(self):
        # XOR: every single split has zero gini gain, so CART stays a stump.
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 5, dtype=float)
        y = (X[:, 0].astype(int) ^ X[:, 1].astype(int))
        model = DecisionTreeClassifier().fit(X, y)
        assert model.node_count == 1

    def test_string_labels(self):
        model = DecisionTreeClassifier().fit([[0.0], [1.0]], ["a", "b"])
        assert list(model.predict([[0.0], [1.0]])) == ["a", "b"]

    def test_sample_weight_shifts_majority(self):
        X = [[0.0], [0.0], [0.0]]
        y = [0, 0, 1]
        w = [1.0, 1.0, 10.0]
        model = DecisionTreeClassifier().fit(X, y, sample_weight=w)
        assert model.predict([[0.0]])[0] == 1

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        model = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        # a tree that honours 20-sample leaves has at most 5 leaves
        leaves = sum(1 for f in model._nodes.feature if f == -1)
        assert leaves <= 5

    def test_max_depth_limits_depth(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.depth <= 3

    def test_entropy_criterion_works(self):
        X = [[0.0], [1.0], [2.0], [3.0]]
        y = [0, 0, 1, 1]
        model = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert (model.predict(X) == np.asarray(y)).all()

    def test_feature_importances_sum_to_one(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 5))
        y = (X[:, 2] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(model.feature_importances_) == 2

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[0.0]], [0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), [])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="nope")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[0.0]])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_training_accuracy_beats_majority(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 4))
        y = rng.integers(0, 3, size=60)
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        majority = np.bincount(y).max() / 60
        assert accuracy >= majority - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_unlimited_tree_interpolates_distinct_points(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.permutation(40).reshape(-1, 1).astype(float)
        y = rng.integers(0, 2, size=40)
        model = DecisionTreeClassifier().fit(X, y)
        assert (model.predict(X) == y).all()


class TestRegressor:
    def test_piecewise_constant(self):
        X = [[0.0], [1.0], [10.0], [11.0]]
        y = [1.0, 1.0, 5.0, 5.0]
        model = DecisionTreeRegressor().fit(X, y)
        predictions = model.predict([[0.5], [10.5]])
        assert predictions[0] == pytest.approx(1.0)
        assert predictions[1] == pytest.approx(5.0)

    def test_leaf_value_is_weighted_mean(self):
        X = [[0.0], [0.0]]
        y = [0.0, 10.0]
        model = DecisionTreeRegressor().fit(X, y, sample_weight=[3.0, 1.0])
        assert model.predict([[0.0]])[0] == pytest.approx(2.5)

    def test_variance_reduction_on_linear_data(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(300, 1))
        y = 4.0 * X[:, 0]
        model = DecisionTreeRegressor(max_depth=6).fit(X, y)
        residual = np.mean((model.predict(X) - y) ** 2)
        assert residual < np.var(y) * 0.05

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit([[0.0]], [1.0, 2.0])
