"""Smoke tests: the cheap example scripts run end to end.

The expensive examples (quickstart, fleet monitoring, capacity planning)
train Random-Forest pipelines for minutes and are exercised implicitly by
the pipeline tests; the two below finish quickly and cover the remaining
example-only code paths (address decoding, file round trip).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestCheapExamples:
    def test_address_decoding(self):
        out = run_example("address_decoding.py", timeout=120)
        assert "Decoded with the correct map" in out
        assert "WRONG layout" in out

    @pytest.mark.slow
    def test_mce_log_pipeline(self):
        out = run_example("mce_log_pipeline.py")
        assert "Exported" in out
        assert "Decisions from the parsed log stream" in out
        assert "Done" in out


class TestExampleHygiene:
    def test_every_example_has_run_instructions(self):
        for path in EXAMPLES.glob("*.py"):
            text = path.read_text(encoding="utf-8")
            assert "Run:" in text, path.name
            assert text.startswith('"""'), path.name

    def test_examples_only_use_public_imports(self):
        """Examples must read like user code: imports from repro.* only
        (plus stdlib), never test helpers."""
        for path in EXAMPLES.glob("*.py"):
            for line in path.read_text(encoding="utf-8").splitlines():
                stripped = line.strip()
                if stripped.startswith(("import repro", "from repro")):
                    assert "._" not in stripped, (path.name, stripped)
