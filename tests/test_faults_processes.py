"""Tests for fault types and their error processes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.processes import (DAY_S, FaultProcess, FaultProcessParams,
                                    PitchWalkKernel)
from repro.faults.types import (PATTERN_OF_FAULT, FailurePattern, FaultType)
from repro.telemetry.events import ErrorType


class TestTaxonomy:
    def test_every_uce_fault_has_a_pattern(self):
        for fault_type in FaultType:
            if fault_type.produces_uer:
                assert fault_type in PATTERN_OF_FAULT

    def test_cell_fault_produces_no_uer(self):
        assert not FaultType.CELL_FAULT.produces_uer
        assert FaultType.CELL_FAULT not in PATTERN_OF_FAULT

    def test_aggregation_property(self):
        assert FailurePattern.SINGLE_ROW.is_aggregation
        assert FailurePattern.DOUBLE_ROW.is_aggregation
        assert not FailurePattern.SCATTERED.is_aggregation


class TestCellFault:
    def test_only_ces(self):
        process = FaultProcess()
        rng = np.random.default_rng(0)
        realization = process.realize(FaultType.CELL_FAULT, rng)
        assert realization.pattern is None
        assert not realization.has_uer
        assert all(e.kind is ErrorType.CE for e in realization.events)
        assert realization.events

    def test_events_sorted_and_inside_window(self):
        process = FaultProcess()
        rng = np.random.default_rng(1)
        for _ in range(20):
            r = process.realize(FaultType.CELL_FAULT, rng)
            times = [e.time for e in r.events]
            assert times == sorted(times)
            assert all(0 <= t <= process.params.window_s for t in times)


@pytest.mark.parametrize("fault_type", [
    FaultType.SWD_FAULT, FaultType.DOUBLE_SWD_FAULT,
    FaultType.HALF_TOTAL_FAULT, FaultType.TSV_FAULT,
    FaultType.COLUMN_DRIVER_FAULT,
])
class TestUCEFaults:
    def test_realization_invariants(self, fault_type):
        process = FaultProcess()
        rng = np.random.default_rng(2)
        for _ in range(15):
            r = process.realize(fault_type, rng)
            assert r.pattern is PATTERN_OF_FAULT[fault_type]
            assert r.has_uer
            times = [e.time for e in r.events]
            assert times == sorted(times)
            rows = [row for _, row in r.uer_row_sequence]
            assert len(rows) == len(set(rows)), "UER rows must be distinct"
            assert all(0 <= row < process.params.rows for row in rows)
            # uer_row_sequence times are increasing
            seq_times = [t for t, _ in r.uer_row_sequence]
            assert seq_times == sorted(seq_times)

    def test_sudden_without_precursors(self, fault_type):
        process = FaultProcess()
        rng = np.random.default_rng(3)
        for _ in range(10):
            r = process.realize(fault_type, rng, emit_precursors=False)
            first_uer = r.uer_row_sequence[0][0]
            precursors = [e for e in r.events if e.kind is not ErrorType.UER
                          and e.time < first_uer]
            assert not precursors

    def test_precursors_precede_first_uer(self, fault_type):
        process = FaultProcess()
        rng = np.random.default_rng(4)
        found = 0
        for _ in range(30):
            r = process.realize(fault_type, rng, emit_precursors=True)
            first_uer = r.uer_row_sequence[0][0]
            uer_rows = {row for _, row in r.uer_row_sequence}
            pre = [e for e in r.events if e.time < first_uer]
            # in-row precursors may come later; bank precursors must exist
            if pre:
                found += 1
                assert all(e.kind is not ErrorType.UER for e in pre)
        assert found >= 25  # nearly every precursor bank materialises some


class TestSpatialStructure:
    def test_single_row_clusters_are_narrow(self):
        process = FaultProcess()
        rng = np.random.default_rng(5)
        for _ in range(30):
            r = process.realize(FaultType.SWD_FAULT, rng,
                                emit_precursors=False)
            rows = sorted(row for _, row in r.uer_row_sequence)
            if len(rows) < 3:
                continue
            core = [row for row in rows
                    if abs(row - r.anchor_rows[0]) <= 4096]
            assert len(core) >= 0.7 * len(rows)

    def test_half_total_interval_is_half_the_bank(self):
        process = FaultProcess()
        rng = np.random.default_rng(6)
        r = process.realize(FaultType.HALF_TOTAL_FAULT, rng)
        assert len(r.anchor_rows) == 2
        assert abs(r.anchor_rows[1] - r.anchor_rows[0]) == 32768 // 2

    def test_double_interval_in_range(self):
        process = FaultProcess()
        rng = np.random.default_rng(7)
        for _ in range(10):
            r = process.realize(FaultType.DOUBLE_SWD_FAULT, rng)
            interval = abs(r.anchor_rows[1] - r.anchor_rows[0])
            assert 1024 <= interval <= 8192

    def test_column_fault_uses_one_column(self):
        process = FaultProcess()
        rng = np.random.default_rng(8)
        r = process.realize(FaultType.COLUMN_DRIVER_FAULT, rng)
        columns = {e.column for e in r.events}
        assert len(columns) == 1

    def test_tsv_rows_span_its_region(self):
        process = FaultProcess()
        rng = np.random.default_rng(9)
        r = process.realize(FaultType.TSV_FAULT, rng)
        rows = [row for _, row in r.uer_row_sequence]
        assert max(rows) - min(rows) >= 0  # within the bank
        assert r.anchor_rows == ()

    def test_lattice_predictability(self):
        """Future UER rows of SWD faults often sit on the pitch lattice of
        the first rows — the property Cordial's cross-row stage exploits."""
        process = FaultProcess()
        rng = np.random.default_rng(10)
        on_lattice, total = 0, 0
        for _ in range(400):
            r = process.realize(FaultType.SWD_FAULT, rng,
                                emit_precursors=False)
            rows = [row for _, row in r.uer_row_sequence]
            if len(rows) < 4:
                continue
            step = rows[2] - rows[1]
            if step == 0:
                continue
            total += 1
            if any(abs(abs(rows[3] - rows[2]) - k * abs(step)) <= 4
                   for k in (1, 2, 3)):
                on_lattice += 1
        assert total > 50
        assert on_lattice / total > 0.45

    def test_ce_noise_rarely_hits_weak_rows(self):
        """Noise flanks its target row (offset 1-3), so direct hits on a
        planned UER row only happen when two weak rows sit 2-6 rows apart
        (adjacent-recurrence rows) — rare."""
        params = FaultProcessParams()
        rng = np.random.default_rng(11)
        hits = trials = 0
        for seed in range(30):
            kernel = PitchWalkKernel([5000], params,
                                     np.random.default_rng(seed))
            planned = set(kernel.plan_uer_rows(5, rng))
            for _ in range(30):
                trials += 1
                hits += kernel.noise_row(rng) in planned
        assert hits / trials < 0.1


class TestTemporalStructure:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_all_events_within_window(self, seed):
        process = FaultProcess()
        rng = np.random.default_rng(seed)
        for fault_type in FaultType:
            r = process.realize(fault_type, rng)
            assert all(0 <= e.time <= process.params.window_s
                       for e in r.events)

    def test_post_onset_streams_after_first_uer(self):
        process = FaultProcess()
        rng = np.random.default_rng(12)
        for _ in range(20):
            r = process.realize(FaultType.TSV_FAULT, rng,
                                emit_precursors=False)
            first_uer = r.uer_row_sequence[0][0]
            for event in r.events:
                if event.kind in (ErrorType.CE, ErrorType.UEO):
                    assert event.time >= first_uer
