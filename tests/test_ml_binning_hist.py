"""Tests for quantile binning and the histogram tree growers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml._binning import BinMapper
from repro.ml._hist import (TreeParams, grow_classification_tree,
                            grow_regression_tree)
from repro.ml.tree import DecisionTreeClassifier


class TestBinMapper:
    def test_few_distinct_values_get_own_bins(self):
        X = np.array([[0.0], [1.0], [2.0], [1.0]])
        mapper = BinMapper(max_bins=255)
        binned = mapper.fit_transform(X)
        assert len(np.unique(binned)) == 3
        # order preserved
        assert binned[0, 0] < binned[1, 0] < binned[2, 0]

    def test_many_values_capped_at_max_bins(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10_000, 1))
        mapper = BinMapper(max_bins=64)
        binned = mapper.fit_transform(X)
        assert binned.max() < 64

    def test_transform_monotonic(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 1))
        mapper = BinMapper(max_bins=32).fit(X)
        order = np.argsort(X[:, 0])
        codes = mapper.transform(X)[order, 0]
        assert (np.diff(codes.astype(int)) >= 0).all()

    def test_nan_goes_to_missing_bin(self):
        X = np.array([[0.0], [1.0], [np.nan]])
        mapper = BinMapper()
        binned = mapper.fit_transform(X)
        assert binned[2, 0] == mapper.missing_bin_[0]

    def test_out_of_range_values_clamp(self):
        mapper = BinMapper().fit(np.array([[0.0], [1.0], [2.0]]))
        binned = mapper.transform(np.array([[-100.0], [100.0]]))
        assert binned[0, 0] == 0
        assert binned[1, 0] >= binned[0, 0]

    def test_feature_count_mismatch_rejected(self):
        mapper = BinMapper().fit(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            mapper.transform(np.zeros((4, 3)))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            BinMapper().transform(np.zeros((1, 1)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_fit_transform_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(100, 3))
        a = BinMapper(max_bins=16).fit_transform(X)
        b = BinMapper(max_bins=16).fit_transform(X)
        assert (a == b).all()


class TestClassificationGrower:
    def _grow(self, X, y, w=None, **kw):
        mapper = BinMapper()
        binned = mapper.fit_transform(X)
        n_bins = int(mapper.n_bins_.max())
        params = TreeParams(**kw)
        rng = np.random.default_rng(0)
        weights = np.ones(len(y)) if w is None else np.asarray(w, float)
        tree = grow_classification_tree(
            binned, np.asarray(y, dtype=np.int64), weights,
            int(np.max(y)) + 1, n_bins, params, rng)
        return tree, mapper

    def test_separable_data_pure_leaves(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = [0, 0, 1, 1]
        tree, mapper = self._grow(X, y)
        proba = tree.predict_value(mapper.transform(X))
        assert (np.argmax(proba, axis=1) == y).all()

    def test_matches_exact_tree_on_clean_data(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(400, 5))
        y = ((X[:, 0] > 0.2) & (X[:, 3] < 0.5)).astype(int)
        tree, mapper = self._grow(X, y, max_depth=4)
        hist_pred = np.argmax(tree.predict_value(mapper.transform(X)), axis=1)
        exact = DecisionTreeClassifier(max_depth=4).fit(X, y)
        exact_pred = exact.predict(X)
        agreement = (hist_pred == exact_pred).mean()
        assert agreement > 0.98

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(64, 2))
        y = rng.integers(0, 2, size=64)
        tree, _ = self._grow(X, y, min_samples_leaf=32)
        assert tree.n_leaves <= 2

    def test_weighted_majority(self):
        X = np.zeros((3, 1))
        y = [0, 0, 1]
        tree, mapper = self._grow(X, y, w=[1.0, 1.0, 10.0])
        proba = tree.predict_value(mapper.transform(X))
        assert np.argmax(proba[0]) == 1


class TestRegressionGrower:
    def _grow(self, X, grad, hess, leafwise=False, **kw):
        mapper = BinMapper()
        binned = mapper.fit_transform(X)
        n_bins = int(mapper.n_bins_.max())
        params = TreeParams(**kw)
        rng = np.random.default_rng(0)
        tree = grow_regression_tree(binned, np.asarray(grad, float),
                                    np.asarray(hess, float), n_bins, params,
                                    rng, leafwise=leafwise)
        return tree, mapper

    def test_leaf_values_are_newton_steps(self):
        # one leaf only: value must be -G/(H + lambda)
        X = np.zeros((4, 1))
        grad = [1.0, 1.0, 1.0, 1.0]
        hess = [1.0, 1.0, 1.0, 1.0]
        tree, mapper = self._grow(X, grad, hess, reg_lambda=1.0)
        value = tree.predict_value(mapper.transform(X))[0, 0]
        assert value == pytest.approx(-4.0 / 5.0)

    def test_split_separates_gradient_signs(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        grad = np.array([1.0, 1.0, -1.0, -1.0])
        hess = np.ones(4)
        tree, mapper = self._grow(X, grad, hess, reg_lambda=0.0)
        values = tree.predict_value(mapper.transform(X))[:, 0]
        assert values[0] == pytest.approx(-1.0)
        assert values[2] == pytest.approx(1.0)

    def test_gamma_blocks_weak_splits(self):
        X = np.array([[0.0], [1.0]] * 10)
        grad = np.array([0.01, -0.01] * 10)
        hess = np.ones(20)
        tree, _ = self._grow(X, grad, hess, gamma=100.0)
        assert len(tree) == 1  # root only

    def test_leafwise_respects_max_leaves(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(500, 4))
        grad = rng.normal(size=500)
        hess = np.ones(500)
        tree, _ = self._grow(X, grad, hess, leafwise=True, max_leaves=8,
                             min_samples_leaf=5)
        assert tree.n_leaves <= 8

    def test_leafwise_greedy_order(self):
        # leaf-wise growth with 2 leaves must take the single best split,
        # identical to depth-wise with depth 1.
        rng = np.random.default_rng(7)
        X = rng.normal(size=(300, 3))
        grad = np.where(X[:, 1] > 0, 1.0, -1.0) + rng.normal(0, .1, 300)
        hess = np.ones(300)
        leafwise, mapper = self._grow(X, grad, hess, leafwise=True,
                                      max_leaves=2)
        depthwise, _ = self._grow(X, grad, hess, leafwise=False, max_depth=1)
        binned = mapper.transform(X)
        assert np.allclose(leafwise.predict_value(binned),
                           depthwise.predict_value(binned))

    def test_sample_idx_restricts_training_rows(self):
        X = np.vstack([np.zeros((10, 1)), np.ones((10, 1))])
        grad = np.concatenate([np.ones(10), -np.ones(10)])
        hess = np.ones(20)
        # train only on the first half: no split possible, leaf from subset
        tree, mapper = self._grow(X, grad, hess)
        sub_tree, _ = self._grow(X[:10], grad[:10], hess[:10])
        assert len(tree) > 1
        assert len(sub_tree) == 1
