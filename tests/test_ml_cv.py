"""Tests for the cross-validation splitters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.cv import GroupKFold, KFold, StratifiedKFold, cross_val_score
from repro.ml.tree import DecisionTreeClassifier


class TestKFold:
    def test_partition(self):
        folds = list(KFold(n_splits=4, seed=0).split(20))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in folds:
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 20

    def test_deterministic(self):
        a = [t.tolist() for _, t in KFold(3, seed=5).split(10)]
        b = [t.tolist() for _, t in KFold(3, seed=5).split(10)]
        assert a == b

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(4))
        assert folds[0][1].tolist() == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            KFold(1)
        with pytest.raises(ValueError):
            list(KFold(5).split(3))


class TestStratifiedKFold:
    def test_class_balance_preserved(self):
        y = np.array([0] * 80 + [1] * 20)
        for train, test in StratifiedKFold(4, seed=0).split(y):
            positive_rate = y[test].mean()
            assert 0.1 <= positive_rate <= 0.3

    def test_partition(self):
        y = np.array([0, 1] * 15)
        all_test = np.concatenate(
            [test for _, test in StratifiedKFold(3, seed=1).split(y)])
        assert sorted(all_test.tolist()) == list(range(30))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_every_fold_has_both_classes(self, seed):
        y = np.array([0] * 12 + [1] * 12)
        for train, test in StratifiedKFold(3, seed=seed).split(y):
            assert len(np.unique(y[train])) == 2


class TestGroupKFold:
    def test_groups_never_split(self):
        groups = ["a", "a", "b", "b", "c", "c", "d", "d"]
        for train, test in GroupKFold(2, seed=0).split(groups):
            train_groups = {groups[i] for i in train}
            test_groups = {groups[i] for i in test}
            assert train_groups & test_groups == set()

    def test_too_few_groups(self):
        with pytest.raises(ValueError):
            list(GroupKFold(5).split(["a", "b"]))


class TestCrossValScore:
    def test_scores_shape_and_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=3), X, y,
            n_splits=4, seed=0)
        assert scores.shape == (4,)
        assert (scores > 0.8).all()

    def test_custom_scorer(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(int)
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=2), X, y,
            n_splits=3, seed=0,
            scorer=lambda a, b: 1.0 - float(np.mean(np.asarray(a)
                                                    == np.asarray(b))))
        assert (scores < 0.3).all()
