"""Tests for the three ensemble models (forest, XGBoost-style, LightGBM-style)."""

import numpy as np
import pytest

from repro.ml import (LGBMClassifier, RandomForestClassifier, XGBClassifier)


def binary_data(seed=0, n=400, d=6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = ((X[:, 0] + 0.5 * X[:, 1] * X[:, 2]) > 0).astype(int)
    return X, y


def multiclass_data(seed=0, n=450, d=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] > 0.4).astype(int) + (X[:, 1] > -0.2).astype(int)
    return X, y


ALL_MODELS = [
    lambda: RandomForestClassifier(n_estimators=40, random_state=0),
    lambda: XGBClassifier(n_estimators=50, random_state=0),
    lambda: LGBMClassifier(n_estimators=50, random_state=0),
]


@pytest.mark.parametrize("factory", ALL_MODELS)
class TestCommonBehaviour:
    def test_binary_accuracy(self, factory):
        X, y = binary_data()
        Xt, yt = binary_data(seed=1)
        model = factory().fit(X, y)
        assert (model.predict(Xt) == yt).mean() > 0.8

    def test_multiclass_accuracy(self, factory):
        X, y = multiclass_data()
        Xt, yt = multiclass_data(seed=1)
        model = factory().fit(X, y)
        assert (model.predict(Xt) == yt).mean() > 0.85

    def test_proba_normalised(self, factory):
        X, y = multiclass_data()
        model = factory().fit(X, y)
        proba = model.predict_proba(X[:50])
        assert proba.shape == (50, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_deterministic_under_seed(self, factory):
        X, y = binary_data()
        p1 = factory().fit(X, y).predict_proba(X[:20])
        p2 = factory().fit(X, y).predict_proba(X[:20])
        assert np.allclose(p1, p2)

    def test_string_labels_roundtrip(self, factory):
        X, y = binary_data(n=200)
        labels = np.where(y == 1, "bad", "good")
        model = factory().fit(X, labels)
        predictions = model.predict(X[:10])
        assert set(predictions) <= {"bad", "good"}

    def test_feature_importances_shape(self, factory):
        X, y = binary_data()
        model = factory().fit(X, y)
        assert model.feature_importances_.shape == (X.shape[1],)
        assert model.feature_importances_.sum() == pytest.approx(1.0)
        # the informative feature dominates
        assert np.argmax(model.feature_importances_) == 0

    def test_rejects_empty(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.empty((0, 3)), [])

    def test_predict_before_fit(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((1, 3)))


class TestRandomForestSpecific:
    def test_more_trees_reduce_variance(self):
        X, y = binary_data(n=300)
        Xt, yt = binary_data(seed=9, n=300)
        accs = {}
        for n in (1, 50):
            scores = []
            for seed in range(5):
                model = RandomForestClassifier(n_estimators=n,
                                               random_state=seed)
                scores.append((model.fit(X, y).predict(Xt) == yt).mean())
            accs[n] = np.std(scores)
        assert accs[50] <= accs[1]

    def test_class_weight_balanced_helps_minority_recall(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(600, 4))
        y = (X[:, 0] > 1.6).astype(int)  # ~5% positives
        plain = RandomForestClassifier(n_estimators=40, max_depth=4,
                                       random_state=0).fit(X, y)
        balanced = RandomForestClassifier(n_estimators=40, max_depth=4,
                                          class_weight="balanced",
                                          random_state=0).fit(X, y)
        recall_plain = (plain.predict(X)[y == 1] == 1).mean()
        recall_balanced = (balanced.predict(X)[y == 1] == 1).mean()
        assert recall_balanced >= recall_plain

    def test_bootstrap_off_is_deterministic_ensemble(self):
        X, y = binary_data(n=150)
        model = RandomForestClassifier(n_estimators=5, bootstrap=False,
                                       max_features=None, random_state=0)
        model.fit(X, y)
        # without bootstrap or feature subsampling all trees are identical
        p = model.predict_proba(X)
        single = model.trees_[0].predict_value(
            model._mapper.transform(X))
        assert np.allclose(p, single)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(class_weight="heavy")


class TestXGBSpecific:
    def test_more_rounds_reduce_training_loss(self):
        X, y = binary_data(n=300)
        few = XGBClassifier(n_estimators=5, random_state=0).fit(X, y)
        many = XGBClassifier(n_estimators=80, random_state=0).fit(X, y)

        def logloss(model):
            p = np.clip(model.predict_proba(X)[:, 1], 1e-9, 1 - 1e-9)
            return -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))

        assert logloss(many) < logloss(few)

    def test_base_score_sets_prior(self):
        X = np.zeros((10, 1))
        y = np.asarray([0] * 8 + [1] * 2)
        model = XGBClassifier(n_estimators=1, learning_rate=1e-9,
                              base_score=0.2, random_state=0).fit(X, y)
        # with negligible learning the prediction stays at the prior
        assert model.predict_proba(X)[0, 1] == pytest.approx(0.2, abs=0.01)

    def test_decision_function_binary_shape(self):
        X, y = binary_data(n=100)
        model = XGBClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert model.decision_function(X).shape == (100,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            XGBClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            XGBClassifier(subsample=0.0)
        with pytest.raises(ValueError):
            XGBClassifier(base_score=1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            XGBClassifier().fit(np.zeros((5, 1)), [1, 1, 1, 1, 1])


class TestLGBMSpecific:
    def test_num_leaves_respected(self):
        X, y = binary_data(n=500)
        model = LGBMClassifier(n_estimators=3, num_leaves=4,
                               min_child_samples=1, random_state=0)
        model.fit(X, y)
        for round_trees in model.trees_:
            for tree in round_trees:
                assert tree.n_leaves <= 4

    def test_goss_still_learns(self):
        X, y = binary_data(n=600)
        Xt, yt = binary_data(seed=3, n=300)
        model = LGBMClassifier(n_estimators=60, goss=True, top_rate=0.2,
                               other_rate=0.2, random_state=0).fit(X, y)
        assert (model.predict(Xt) == yt).mean() > 0.75

    def test_invalid_goss_rates(self):
        with pytest.raises(ValueError):
            LGBMClassifier(goss=True, top_rate=0.9, other_rate=0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LGBMClassifier(num_leaves=1)
        with pytest.raises(ValueError):
            LGBMClassifier(n_estimators=0)
