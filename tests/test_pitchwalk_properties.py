"""Property tests for the pitch-walk kernel (the load-bearing fault model).

The whole reproduction argument rests on this kernel producing three
behaviours simultaneously (DESIGN.md §4.3); these tests pin each one as a
randomised invariant rather than a single calibration number.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.processes import FaultProcessParams, PitchWalkKernel


def make_kernel(seed, anchor=16000, params=None):
    params = params or FaultProcessParams()
    return PitchWalkKernel([anchor], params,
                           np.random.default_rng(seed)), params


class TestStructure:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_pitch_in_configured_range(self, seed):
        kernel, params = make_kernel(seed)
        low, high = params.pitch_range
        assert low <= kernel.pitch <= high

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_lattice_positions_evenly_spaced(self, seed):
        kernel, _ = make_kernel(seed)
        for lattice in kernel.lattices:
            gaps = {b - a for a, b in zip(lattice, lattice[1:])}
            assert gaps == {kernel.pitch}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_rows_stay_in_bank(self, seed):
        kernel, params = make_kernel(seed)
        rng = np.random.default_rng(seed + 1)
        rows = kernel.plan_uer_rows(12, rng)
        assert all(0 <= row < params.rows for row in rows)
        for _ in range(50):
            assert 0 <= kernel.noise_row(rng) < params.rows

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_planned_rows_distinct(self, seed):
        kernel, _ = make_kernel(seed)
        rows = kernel.plan_uer_rows(10, np.random.default_rng(seed + 2))
        assert len(rows) == len(set(rows))


class TestWalkBehaviour:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_most_rows_near_lattice(self, seed):
        """Rows sit within jitter+adjacency distance of a lattice
        position, apart from the small outlier fraction."""
        kernel, params = make_kernel(seed)
        rows = kernel.plan_uer_rows(10, np.random.default_rng(seed + 3))
        lattice = np.asarray(kernel.lattices[0])
        near = sum(np.abs(lattice - row).min() <= params.walk_jitter + 4
                   for row in rows)
        assert near >= 0.6 * len(rows)

    def test_deterministic_walk_marches(self):
        """Deterministic kernels produce exact single-pitch steps (between
        special moves), the signature the cross-row features key on."""
        exact_steps = total_steps = 0
        for seed in range(200):
            kernel, _ = make_kernel(seed)
            if not kernel.deterministic:
                continue
            rows = kernel.plan_uer_rows(6, np.random.default_rng(seed + 4))
            for a, b in zip(rows, rows[1:]):
                total_steps += 1
                if abs(b - a) in (kernel.pitch, 2 * kernel.pitch):
                    exact_steps += 1
        assert total_steps > 100
        assert exact_steps / total_steps > 0.6

    def test_deterministic_fraction_near_parameter(self):
        params = FaultProcessParams()
        flags = [make_kernel(seed)[0].deterministic
                 for seed in range(400)]
        assert abs(np.mean(flags) - params.deterministic_walk_frac) < 0.08

    def test_double_cluster_kernel_uses_both_lattices(self):
        params = FaultProcessParams()
        kernel = PitchWalkKernel([8000, 8000 + 4096], params,
                                 np.random.default_rng(0))
        rows = kernel.plan_uer_rows(20, np.random.default_rng(1))
        near_first = sum(abs(r - 8000) < 2048 for r in rows)
        near_second = sum(abs(r - 12096) < 2048 for r in rows)
        assert near_first > 0 and near_second > 0
