"""Tests for the sliding-window aggregator and alarm rules."""

import pytest

from repro.hbm.address import DeviceAddress, MicroLevel
from repro.telemetry.aggregator import (Alarm, AlarmRule,
                                        SlidingWindowAggregator,
                                        default_rules)
from repro.telemetry.events import ErrorRecord, ErrorType


def rec(seq, t, error_type=ErrorType.CE, bank=0, row=0):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=bank,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


def ce_rule(threshold=3, window=100.0):
    return AlarmRule(MicroLevel.BANK, ErrorType.CE, threshold=threshold,
                     window_s=window)


class TestAlarmRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlarmRule(MicroLevel.BANK, ErrorType.CE, threshold=0,
                      window_s=10)
        with pytest.raises(ValueError):
            AlarmRule(MicroLevel.BANK, ErrorType.CE, threshold=1,
                      window_s=0)


class TestAggregator:
    def test_alarm_fires_at_threshold(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=3)])
        events = [rec(i, float(i)) for i in range(5)]
        alarms = agg.replay(events)
        assert len(alarms) == 1
        assert alarms[0].count == 3
        assert alarms[0].timestamp == 2.0

    def test_window_expiry_prevents_alarm(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=3, window=10.0)])
        # three events, but spaced wider than the window
        events = [rec(0, 0.0), rec(1, 20.0), rec(2, 40.0)]
        assert agg.replay(events) == []

    def test_rearms_after_drain(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=2, window=10.0)])
        events = [rec(0, 0.0), rec(1, 1.0),          # alarm 1
                  rec(2, 100.0), rec(3, 101.0)]      # drained, alarm 2
        alarms = agg.replay(events)
        assert len(alarms) == 2

    def test_no_storm_within_burst(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=2, window=100.0)])
        events = [rec(i, float(i)) for i in range(10)]
        assert len(agg.replay(events)) == 1

    def test_per_unit_windows(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=2)])
        events = [rec(0, 0.0, bank=0), rec(1, 1.0, bank=1),
                  rec(2, 2.0, bank=0), rec(3, 3.0, bank=1)]
        alarms = agg.replay(events)
        assert len(alarms) == 2
        assert {a.unit for a in alarms} == {
            rec(0, 0, bank=0).bank_key, rec(0, 0, bank=1).bank_key}

    def test_type_filter(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=1)])
        assert agg.ingest(rec(0, 0.0, ErrorType.UER)) == []
        assert len(agg.ingest(rec(1, 1.0, ErrorType.CE))) == 1

    def test_rate_query(self):
        agg = SlidingWindowAggregator([ce_rule(threshold=100, window=10.0)])
        for i in range(5):
            agg.ingest(rec(i, float(i)))
        assert agg.rate(0, rec(0, 0).bank_key) == pytest.approx(0.5)
        assert agg.rate(0, ("nothing",)) == 0.0

    def test_alarmed_units_by_rule(self):
        rules = [ce_rule(threshold=1),
                 AlarmRule(MicroLevel.BANK, ErrorType.UER, 1, 100.0)]
        agg = SlidingWindowAggregator(rules)
        agg.replay([rec(0, 0.0, ErrorType.CE),
                    rec(1, 1.0, ErrorType.UER, bank=1)])
        assert agg.alarmed_units(0) == [rec(0, 0, bank=0).bank_key]
        assert agg.alarmed_units(1) == [rec(0, 0, bank=1).bank_key]

    def test_time_order_enforced(self):
        agg = SlidingWindowAggregator([ce_rule()])
        agg.ingest(rec(0, 10.0))
        with pytest.raises(ValueError):
            agg.ingest(rec(1, 5.0))

    def test_needs_rules(self):
        with pytest.raises(ValueError):
            SlidingWindowAggregator([])

    def test_default_rules_on_fleet(self, small_dataset):
        agg = SlidingWindowAggregator(default_rules())
        alarms = agg.replay(small_dataset.store)
        assert alarms, "a degrading fleet must raise alarms"
        uer_alarms = [a for a in alarms if a.error_type is ErrorType.UER]
        # UER-alarmed banks are a subset of the true UER banks
        uer_banks = set(small_dataset.uer_banks)
        assert {a.unit for a in uer_alarms} <= uer_banks
