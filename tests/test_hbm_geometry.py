"""Unit tests for the HBM and fleet geometry model."""

import pytest

from repro.hbm.geometry import FleetGeometry, HBMGeometry


class TestHBMGeometry:
    def test_default_counts_match_hbm2e(self):
        geo = HBMGeometry()
        assert geo.sids == 2
        assert geo.channels == 8
        assert geo.pseudo_channels == 2
        assert geo.bank_groups == 4
        assert geo.banks == 4
        assert geo.rows == 32768
        assert geo.columns == 128

    def test_banks_per_device(self):
        geo = HBMGeometry()
        assert geo.banks_per_device == 2 * 8 * 2 * 4 * 4

    def test_rows_per_device(self):
        geo = HBMGeometry()
        assert geo.rows_per_device == geo.banks_per_device * 32768

    def test_cells_per_bank(self):
        assert HBMGeometry().cells_per_bank == 32768 * 128

    def test_bank_index_roundtrip_exhaustive(self):
        geo = HBMGeometry()
        seen = set()
        for index in range(geo.banks_per_device):
            coord = geo.bank_coord(index)
            assert geo.bank_index(*coord) == index
            seen.add(coord)
        assert len(seen) == geo.banks_per_device

    def test_bank_index_rejects_out_of_range(self):
        geo = HBMGeometry()
        with pytest.raises(ValueError):
            geo.bank_index(2, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            geo.bank_index(0, 8, 0, 0, 0)
        with pytest.raises(ValueError):
            geo.bank_index(0, 0, 0, 0, -1)

    def test_bank_coord_rejects_out_of_range(self):
        geo = HBMGeometry()
        with pytest.raises(ValueError):
            geo.bank_coord(geo.banks_per_device)
        with pytest.raises(ValueError):
            geo.bank_coord(-1)

    def test_validate_cell(self):
        geo = HBMGeometry()
        geo.validate_cell(0, 0)
        geo.validate_cell(32767, 127)
        with pytest.raises(ValueError):
            geo.validate_cell(32768, 0)
        with pytest.raises(ValueError):
            geo.validate_cell(0, 128)

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            HBMGeometry(rows=0)
        with pytest.raises(ValueError):
            HBMGeometry(channels=-1)


class TestFleetGeometry:
    def test_paper_scale(self):
        fleet = FleetGeometry()
        assert fleet.total_npus == 1280 * 8
        assert fleet.total_npus > 10000
        assert fleet.total_hbms == fleet.total_npus * 8
        assert fleet.total_hbms > 80000

    def test_total_banks(self):
        fleet = FleetGeometry()
        assert fleet.total_banks == fleet.total_hbms * fleet.hbm.banks_per_device
        assert fleet.hbm.banks_per_device == 512

    def test_scaled_reduces_nodes(self):
        fleet = FleetGeometry()
        small = fleet.scaled(0.1)
        assert small.nodes == 128
        assert small.npus_per_node == fleet.npus_per_node
        assert small.hbm == fleet.hbm

    def test_scaled_never_below_one_node(self):
        assert FleetGeometry().scaled(1e-9).nodes == 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FleetGeometry().scaled(0)

    def test_rejects_invalid_counts(self):
        with pytest.raises(ValueError):
            FleetGeometry(nodes=0)
        with pytest.raises(ValueError):
            FleetGeometry(npus_per_node=0)
