"""Tests for ranking metrics and permutation importance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.importance import (grouped_permutation_importance,
                                 permutation_importance)
from repro.ml.ranking import (best_f1_threshold, pr_auc,
                              precision_recall_curve, roc_auc)
from repro.ml.tree import DecisionTreeClassifier


class TestROCAUC:
    def test_perfect_ranking(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [0, 0, 1, 1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(5000)
        labels = rng.random(5000) < 0.3
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_count_half(self):
        assert roc_auc([0.5, 0.5], [0, 1]) == pytest.approx(0.5)

    def test_hand_example(self):
        # positives at ranks 3,4 of 4 -> U = (3+4) - 3 = 4 of 4 -> 1.0;
        # one swap: scores [0.1, 0.8, 0.4, 0.9], labels [0,1,0,1]
        value = roc_auc([0.1, 0.8, 0.4, 0.9], [0, 1, 0, 1])
        assert value == pytest.approx(1.0)  # both positives above 0.4? no:
        # positive 0.8 > negatives 0.1,0.4; positive 0.9 > both -> 4/4

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([0.1, 0.2], [1, 1])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_antisymmetry(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(50)
        labels = np.concatenate([np.ones(10), np.zeros(40)]).astype(bool)
        assert (roc_auc(scores, labels)
                == pytest.approx(1.0 - roc_auc(-scores, labels)))


class TestPRCurve:
    def test_perfect_model(self):
        assert pr_auc([0.1, 0.9], [0, 1]) == pytest.approx(1.0)

    def test_constant_scores_give_prevalence(self):
        labels = [1, 0, 0, 0]
        assert pr_auc([0.5] * 4, labels) == pytest.approx(0.25)

    def test_curve_properties(self):
        rng = np.random.default_rng(1)
        scores = rng.random(200)
        labels = rng.random(200) < scores
        precision, recall, thresholds = precision_recall_curve(scores,
                                                               labels)
        assert (np.diff(recall) >= 0).all()
        assert (precision >= 0).all() and (precision <= 1).all()
        assert recall[-1] == pytest.approx(1.0)
        assert (np.diff(thresholds) <= 0).all()

    def test_pr_auc_between_0_and_1(self):
        rng = np.random.default_rng(2)
        scores = rng.random(300)
        labels = rng.random(300) < 0.2
        assert 0.0 <= pr_auc(scores, labels) <= 1.0

    def test_best_f1_threshold(self):
        scores = [0.1, 0.4, 0.6, 0.9]
        labels = [0, 0, 1, 1]
        threshold, f1 = best_f1_threshold(scores, labels)
        assert f1 == pytest.approx(1.0)
        assert 0.4 < threshold <= 0.6

    def test_no_positive_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_curve([0.5], [0])


class TestPermutationImportance:
    def _model_and_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 3))
        y = (X[:, 0] > 0).astype(int)  # only feature 0 matters
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        return model, X, y

    def test_informative_feature_ranks_first(self):
        model, X, y = self._model_and_data()
        result = permutation_importance(model, X, y, n_repeats=3, seed=0,
                                        feature_names=["a", "b", "c"])
        names = list(result)
        assert names[0] == "a"
        assert result["a"]["mean"] > 0.2
        assert abs(result["b"]["mean"]) < 0.05

    def test_grouped_importance(self):
        model, X, y = self._model_and_data()
        result = grouped_permutation_importance(
            model, X, y, groups={"signal": [0], "noise": [1, 2]},
            n_repeats=3, seed=0)
        assert result["signal"]["mean"] > result["noise"]["mean"]

    def test_validation(self):
        model, X, y = self._model_and_data()
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, feature_names=["a"])
        with pytest.raises(ValueError):
            grouped_permutation_importance(model, X, y,
                                           groups={"bad": [99]})
