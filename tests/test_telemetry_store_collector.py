"""Tests for the indexed error store and the streaming BMC collector."""

import pytest

from repro.hbm.address import DeviceAddress, MicroLevel
from repro.telemetry.collector import BMCCollector
from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.store import ErrorStore


def rec(seq, t, row, error_type=ErrorType.CE, bank=0, npu=0):
    address = DeviceAddress(node=0, npu=npu, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=bank,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


class TestErrorStore:
    def test_append_and_indexing(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE, bank=0),
            rec(1, 2.0, 6, ErrorType.UER, bank=0),
            rec(2, 3.0, 7, ErrorType.UER, bank=1),
        ])
        assert len(store) == 3
        assert len(store.units(MicroLevel.BANK)) == 2
        assert len(store.units_with(MicroLevel.BANK, ErrorType.UER)) == 2
        assert len(store.units_with(MicroLevel.BANK, ErrorType.CE)) == 1

    def test_order_enforced(self):
        store = ErrorStore([rec(0, 5.0, 1)])
        with pytest.raises(ValueError):
            store.append(rec(1, 4.0, 2))

    def test_events_for_filters_by_type(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE),
            rec(1, 2.0, 6, ErrorType.UER),
        ])
        bank_key = rec(0, 1.0, 5).bank_key
        assert len(store.events_for(MicroLevel.BANK, bank_key)) == 2
        uers = store.events_for(MicroLevel.BANK, bank_key, ErrorType.UER)
        assert [r.row for r in uers] == [6]

    def test_first_event_of(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE),
            rec(1, 2.0, 6, ErrorType.UER),
            rec(2, 3.0, 7, ErrorType.UER),
        ])
        bank_key = rec(0, 1.0, 5).bank_key
        first = store.first_event_of(MicroLevel.BANK, bank_key, ErrorType.UER)
        assert first.row == 6
        assert store.first_event_of(MicroLevel.BANK, bank_key,
                                    ErrorType.UEO) is None

    def test_has_event_before_with_window(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE),
            rec(1, 10.0, 6, ErrorType.UER),
        ])
        key = rec(0, 1.0, 5).bank_key
        kinds = (ErrorType.CE, ErrorType.UEO)
        assert store.has_event_before(MicroLevel.BANK, key, kinds, before=10.0)
        assert not store.has_event_before(MicroLevel.BANK, key, kinds,
                                          before=10.0, since=5.0)
        assert not store.has_event_before(MicroLevel.BANK, key, kinds,
                                          before=1.0)

    def test_uer_rows_of_bank_dedup_in_order(self):
        store = ErrorStore([
            rec(0, 1.0, 9, ErrorType.UER),
            rec(1, 2.0, 3, ErrorType.UER),
            rec(2, 3.0, 9, ErrorType.UER),
        ])
        key = rec(0, 1.0, 9).bank_key
        assert [r.row for r in store.uer_rows_of_bank(key)] == [9, 3]

    def test_banks_with_min_uer_rows(self):
        store = ErrorStore([
            rec(0, 1.0, 1, ErrorType.UER, bank=0),
            rec(1, 2.0, 2, ErrorType.UER, bank=0),
            rec(2, 3.0, 1, ErrorType.UER, bank=1),
        ])
        assert len(store.banks_with_min_uer_rows(2)) == 1
        assert len(store.banks_with_min_uer_rows(1)) == 2


class TestBMCCollector:
    def test_trigger_fires_on_third_distinct_uer_row(self):
        collector = BMCCollector(trigger_uer_rows=3)
        events = [
            rec(0, 1.0, 10, ErrorType.CE),
            rec(1, 2.0, 11, ErrorType.UER),
            rec(2, 3.0, 11, ErrorType.UER),   # repeat row: no new row
            rec(3, 4.0, 12, ErrorType.UER),
            rec(4, 5.0, 13, ErrorType.UER),   # third distinct row
        ]
        triggers = list(collector.replay(events))
        assert len(triggers) == 1
        trigger = triggers[0]
        assert trigger.uer_rows == (11, 12, 13)
        assert trigger.timestamp == 5.0
        assert len(trigger.history) == 5

    def test_trigger_fires_once_per_bank(self):
        collector = BMCCollector(trigger_uer_rows=2)
        events = [rec(i, float(i), row=i, error_type=ErrorType.UER)
                  for i in range(6)]
        triggers = list(collector.replay(events))
        assert len(triggers) == 1

    def test_ingest_returns_released_pairs(self):
        collector = BMCCollector(trigger_uer_rows=2)
        released = collector.ingest(rec(0, 1.0, 5, ErrorType.UER))
        assert len(released) == 1
        record, trigger = released[0]
        assert record.row == 5 and trigger is None
        [(record, trigger)] = collector.ingest(rec(1, 2.0, 6, ErrorType.UER))
        assert trigger is not None and trigger.uer_rows == (5, 6)

    def test_history_snapshot_is_immutable_copy(self):
        collector = BMCCollector(trigger_uer_rows=1)
        [(_, trigger)] = collector.ingest(rec(0, 1.0, 5, ErrorType.UER))
        assert trigger is not None
        collector.ingest(rec(1, 2.0, 6, ErrorType.CE))
        assert len(trigger.history) == 1  # unchanged by later events

    def test_independent_banks(self):
        collector = BMCCollector(trigger_uer_rows=1)
        [(_, t0)] = collector.ingest(rec(0, 1.0, 5, ErrorType.UER, bank=0))
        [(_, t1)] = collector.ingest(rec(1, 2.0, 7, ErrorType.UER, bank=1))
        assert t0 is not None and t1 is not None
        assert t0.bank_key != t1.bank_key
        assert len(collector.triggered_banks) == 2

    def test_stale_event_dead_lettered_not_raised(self):
        collector = BMCCollector()  # max_skew=0: any backwards step is late
        collector.ingest(rec(0, 5.0, 1))
        assert collector.ingest(rec(1, 4.0, 2)) == []
        assert collector.dead_letter_counts == {"late": 1}
        [letter] = collector.dead_letters
        assert letter.reason == "late"
        assert letter.timestamp == 4.0

    def test_malformed_input_quarantined(self):
        collector = BMCCollector()
        assert collector.ingest("not a record") == []
        assert collector.dead_letter_counts == {"malformed": 1}

    def test_invalid_trigger_count(self):
        with pytest.raises(ValueError):
            BMCCollector(trigger_uer_rows=0)

    def test_invalid_max_skew(self):
        with pytest.raises(ValueError):
            BMCCollector(max_skew=-1.0)


class TestReorderBuffer:
    def test_reorders_within_skew_window(self):
        collector = BMCCollector(trigger_uer_rows=3, max_skew=10.0)
        arrival = [rec(0, 1.0, 1, ErrorType.UER),
                   rec(2, 3.0, 3, ErrorType.UER),   # arrives early
                   rec(1, 2.0, 2, ErrorType.UER)]   # displaced, within skew
        released = []
        for record in arrival:
            released.extend(collector.ingest(record))
        released.extend(collector.flush())
        assert [r.timestamp for r, _ in released] == [1.0, 2.0, 3.0]
        triggers = [t for _, t in released if t is not None]
        assert len(triggers) == 1
        assert triggers[0].uer_rows == (1, 2, 3)
        assert triggers[0].timestamp == 3.0
        assert collector.dead_letter_counts == {}

    def test_watermark_advances_and_drops_late_events(self):
        collector = BMCCollector(max_skew=5.0)
        collector.ingest(rec(0, 100.0, 1))
        assert collector.watermark == 95.0
        assert collector.ingest(rec(1, 94.0, 2)) == []  # beyond the window
        assert collector.dead_letter_counts == {"late": 1}
        # Within the window: buffered, not dropped.
        assert collector.ingest(rec(2, 96.0, 3)) == []
        released = collector.flush()
        assert [r.timestamp for r, _ in released] == [96.0, 100.0]

    def test_events_held_until_watermark_passes(self):
        collector = BMCCollector(max_skew=10.0)
        assert collector.ingest(rec(0, 1.0, 1)) == []  # held: inside window
        assert collector.ingest(rec(1, 5.0, 2)) == []
        released = collector.ingest(rec(2, 20.0, 3))   # watermark -> 10.0
        assert [r.timestamp for r, _ in released] == [1.0, 5.0]
        assert [r.timestamp for r, _ in collector.flush()] == [20.0]

    def test_forced_release_caps_pending_buffer(self):
        collector = BMCCollector(max_skew=1e9, max_pending=3)
        released = []
        for i in range(5):
            released.extend(collector.ingest(rec(i, float(i), i)))
        assert len(released) == 2  # two forced releases keep len(pending)<=3
        assert [r.timestamp for r, _ in released] == [0.0, 1.0]

    def test_dead_letter_list_is_bounded_counts_exact(self):
        collector = BMCCollector(max_dead_letters=2)
        collector.ingest(rec(0, 10.0, 1))
        for i in range(5):
            collector.ingest(rec(i + 1, 1.0, 2))
        assert len(collector.dead_letters) == 2
        assert collector.dead_letter_counts == {"late": 5}

    def test_replay_equivalent_to_sorted_stream(self):
        events = [rec(i, float(i), row=i % 7, error_type=ErrorType.UER,
                      bank=i % 3) for i in range(30)]
        shuffled = events[:]
        # Swap neighbours (displacement 1.0 < max_skew).
        for i in range(0, len(shuffled) - 1, 2):
            shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
        expect = list(BMCCollector(trigger_uer_rows=3).replay(events))
        got = list(BMCCollector(trigger_uer_rows=3,
                                max_skew=2.0).replay(shuffled))
        assert [(t.bank_key, t.uer_rows, t.timestamp) for t in expect] == \
               [(t.bank_key, t.uer_rows, t.timestamp) for t in got]

    def test_state_dict_roundtrip_resumes_identically(self):
        collector = BMCCollector(trigger_uer_rows=3, max_skew=10.0)
        collector.ingest(rec(0, 1.0, 1, ErrorType.UER))
        collector.ingest(rec(2, 30.0, 3, ErrorType.UER))  # row 1 released
        state = collector.state_dict()

        restored = BMCCollector().load_state_dict(state)
        assert restored.state_dict() == state
        tail = [rec(1, 25.0, 2, ErrorType.UER),
                rec(3, 50.0, 4, ErrorType.UER)]

        def drain(c):
            out = []
            for record in tail:
                out.extend(c.ingest(record))
            out.extend(c.flush())
            return [(r.timestamp, t.uer_rows if t else None) for r, t in out]

        assert drain(restored) == drain(collector)
