"""Tests for the indexed error store and the streaming BMC collector."""

import pytest

from repro.hbm.address import DeviceAddress, MicroLevel
from repro.telemetry.collector import BMCCollector
from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.store import ErrorStore


def rec(seq, t, row, error_type=ErrorType.CE, bank=0, npu=0):
    address = DeviceAddress(node=0, npu=npu, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=bank,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


class TestErrorStore:
    def test_append_and_indexing(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE, bank=0),
            rec(1, 2.0, 6, ErrorType.UER, bank=0),
            rec(2, 3.0, 7, ErrorType.UER, bank=1),
        ])
        assert len(store) == 3
        assert len(store.units(MicroLevel.BANK)) == 2
        assert len(store.units_with(MicroLevel.BANK, ErrorType.UER)) == 2
        assert len(store.units_with(MicroLevel.BANK, ErrorType.CE)) == 1

    def test_order_enforced(self):
        store = ErrorStore([rec(0, 5.0, 1)])
        with pytest.raises(ValueError):
            store.append(rec(1, 4.0, 2))

    def test_events_for_filters_by_type(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE),
            rec(1, 2.0, 6, ErrorType.UER),
        ])
        bank_key = rec(0, 1.0, 5).bank_key
        assert len(store.events_for(MicroLevel.BANK, bank_key)) == 2
        uers = store.events_for(MicroLevel.BANK, bank_key, ErrorType.UER)
        assert [r.row for r in uers] == [6]

    def test_first_event_of(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE),
            rec(1, 2.0, 6, ErrorType.UER),
            rec(2, 3.0, 7, ErrorType.UER),
        ])
        bank_key = rec(0, 1.0, 5).bank_key
        first = store.first_event_of(MicroLevel.BANK, bank_key, ErrorType.UER)
        assert first.row == 6
        assert store.first_event_of(MicroLevel.BANK, bank_key,
                                    ErrorType.UEO) is None

    def test_has_event_before_with_window(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE),
            rec(1, 10.0, 6, ErrorType.UER),
        ])
        key = rec(0, 1.0, 5).bank_key
        kinds = (ErrorType.CE, ErrorType.UEO)
        assert store.has_event_before(MicroLevel.BANK, key, kinds, before=10.0)
        assert not store.has_event_before(MicroLevel.BANK, key, kinds,
                                          before=10.0, since=5.0)
        assert not store.has_event_before(MicroLevel.BANK, key, kinds,
                                          before=1.0)

    def test_uer_rows_of_bank_dedup_in_order(self):
        store = ErrorStore([
            rec(0, 1.0, 9, ErrorType.UER),
            rec(1, 2.0, 3, ErrorType.UER),
            rec(2, 3.0, 9, ErrorType.UER),
        ])
        key = rec(0, 1.0, 9).bank_key
        assert [r.row for r in store.uer_rows_of_bank(key)] == [9, 3]

    def test_banks_with_min_uer_rows(self):
        store = ErrorStore([
            rec(0, 1.0, 1, ErrorType.UER, bank=0),
            rec(1, 2.0, 2, ErrorType.UER, bank=0),
            rec(2, 3.0, 1, ErrorType.UER, bank=1),
        ])
        assert len(store.banks_with_min_uer_rows(2)) == 1
        assert len(store.banks_with_min_uer_rows(1)) == 2


class TestBMCCollector:
    def test_trigger_fires_on_third_distinct_uer_row(self):
        collector = BMCCollector(trigger_uer_rows=3)
        events = [
            rec(0, 1.0, 10, ErrorType.CE),
            rec(1, 2.0, 11, ErrorType.UER),
            rec(2, 3.0, 11, ErrorType.UER),   # repeat row: no new row
            rec(3, 4.0, 12, ErrorType.UER),
            rec(4, 5.0, 13, ErrorType.UER),   # third distinct row
        ]
        triggers = list(collector.replay(events))
        assert len(triggers) == 1
        trigger = triggers[0]
        assert trigger.uer_rows == (11, 12, 13)
        assert trigger.timestamp == 5.0
        assert len(trigger.history) == 5

    def test_trigger_fires_once_per_bank(self):
        collector = BMCCollector(trigger_uer_rows=2)
        events = [rec(i, float(i), row=i, error_type=ErrorType.UER)
                  for i in range(6)]
        triggers = list(collector.replay(events))
        assert len(triggers) == 1

    def test_history_snapshot_is_immutable_copy(self):
        collector = BMCCollector(trigger_uer_rows=1)
        trigger = collector.ingest(rec(0, 1.0, 5, ErrorType.UER))
        assert trigger is not None
        collector.ingest(rec(1, 2.0, 6, ErrorType.CE))
        assert len(trigger.history) == 1  # unchanged by later events

    def test_independent_banks(self):
        collector = BMCCollector(trigger_uer_rows=1)
        t0 = collector.ingest(rec(0, 1.0, 5, ErrorType.UER, bank=0))
        t1 = collector.ingest(rec(1, 2.0, 7, ErrorType.UER, bank=1))
        assert t0 is not None and t1 is not None
        assert t0.bank_key != t1.bank_key
        assert len(collector.triggered_banks) == 2

    def test_time_order_enforced(self):
        collector = BMCCollector()
        collector.ingest(rec(0, 5.0, 1))
        with pytest.raises(ValueError):
            collector.ingest(rec(1, 4.0, 2))

    def test_invalid_trigger_count(self):
        with pytest.raises(ValueError):
            BMCCollector(trigger_uer_rows=0)
