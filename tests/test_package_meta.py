"""Package-level sanity: exports, version, docs and deliverables exist."""

import pathlib

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.faults
        import repro.hbm
        import repro.ml
        import repro.telemetry
        for module in (repro.core, repro.ml, repro.hbm, repro.telemetry,
                       repro.faults, repro.analysis, repro.datasets):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_import_order_independent(self):
        """Any package may be imported first (no hidden cycles)."""
        import importlib
        import subprocess
        import sys
        for first in ("repro.analysis", "repro.faults", "repro.core",
                      "repro.datasets"):
            code = subprocess.run(
                [sys.executable, "-c", f"import {first}"],
                capture_output=True)
            assert code.returncode == 0, code.stderr.decode()[:500]


class TestDeliverables:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml",
        "docs/ARCHITECTURE.md", "docs/API_GUIDE.md",
    ])
    def test_docs_exist(self, name):
        assert (ROOT / name).is_file(), name

    def test_examples_present_and_documented(self):
        examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
        assert "quickstart.py" in examples
        assert len(examples) >= 5

    def test_benchmarks_cover_every_table_and_figure(self):
        names = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for required in ("test_table1_sudden_ratio.py",
                         "test_table2_dataset_summary.py",
                         "test_table3_pattern_classification.py",
                         "test_table4_crossrow_prediction.py",
                         "test_fig3a_pattern_examples.py",
                         "test_fig3b_pattern_distribution.py",
                         "test_fig4_locality_chisquare.py"):
            assert required in names

    def test_design_documents_substitutions(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "paper used" in text.lower() or "We build" in text
        assert "Cordial" in text

    def test_experiments_records_paper_vs_measured(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for marker in ("Table I", "Table IV", "Figure 4", "Paper",
                       "Measured"):
            assert marker in text
