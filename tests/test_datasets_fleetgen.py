"""Tests for fleet dataset generation and its calibration bands."""

import numpy as np
import pytest

from repro.datasets import (CalibrationTargets, FleetGenConfig,
                            generate_fleet_dataset, measure_calibration)
from repro.faults.types import FailurePattern, FaultType
from repro.hbm.address import MicroLevel
from repro.telemetry.events import ErrorType


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = FleetGenConfig(scale=0.03)
        a = generate_fleet_dataset(config, seed=5)
        b = generate_fleet_dataset(config, seed=5)
        assert len(a.store) == len(b.store)
        assert a.bank_truth.keys() == b.bank_truth.keys()
        for ra, rb in zip(list(a.store)[:200], list(b.store)[:200]):
            assert ra == rb and ra.address == rb.address

    def test_different_seed_differs(self):
        config = FleetGenConfig(scale=0.03)
        a = generate_fleet_dataset(config, seed=5)
        b = generate_fleet_dataset(config, seed=6)
        assert a.bank_truth.keys() != b.bank_truth.keys()


class TestStructure:
    def test_store_is_time_ordered(self, small_dataset):
        times = [r.timestamp for r in small_dataset.store]
        assert times == sorted(times)

    def test_ground_truth_covers_all_uer_banks(self, small_dataset):
        store_banks = small_dataset.store.units_with(MicroLevel.BANK,
                                                     ErrorType.UER)
        truth_banks = set(small_dataset.uer_banks)
        assert store_banks == truth_banks

    def test_truth_uer_rows_match_store(self, small_dataset):
        for bank_key in small_dataset.uer_banks[:40]:
            truth = small_dataset.bank_truth[bank_key]
            store_rows = [r.row for r in
                          small_dataset.store.uer_rows_of_bank(bank_key)]
            assert [row for _, row in truth.uer_row_sequence] == store_rows

    def test_cell_banks_have_no_pattern(self, small_dataset):
        for truth in small_dataset.bank_truth.values():
            if truth.fault_type is FaultType.CELL_FAULT:
                assert truth.pattern is None
                assert not truth.uer_row_sequence
            else:
                assert isinstance(truth.pattern, FailurePattern)

    def test_future_uer_rows_strictly_after(self, small_dataset):
        bank_key = small_dataset.uer_banks[0]
        truth = small_dataset.bank_truth[bank_key]
        t0 = truth.uer_row_sequence[0][0]
        future = truth.future_uer_rows(t0)
        assert all(t > t0 for t, _ in future)
        assert len(future) == len(truth.uer_row_sequence) - 1

    def test_pattern_of(self, small_dataset):
        bank = small_dataset.uer_banks[0]
        assert small_dataset.pattern_of(bank) is not None
        assert small_dataset.pattern_of(("nope",)) is None


class TestCalibrationBands:
    """The generated fleet reproduces the paper's published statistics.

    Tolerances are wide at test scale (the full-scale benches check
    tighter): the point is to catch regressions that break the *shape*.
    """

    @pytest.fixture(scope="class")
    def report(self, small_dataset):
        return measure_calibration(small_dataset)

    def test_predictable_ratio_decreases_towards_rows(self, report):
        ratios = report.predictable_ratio
        assert ratios["NPU"] >= ratios["Bank"] - 0.03
        assert ratios["Bank"] > ratios["Row"]
        assert ratios["Row"] < 0.12

    def test_bank_level_sudden_dominates(self, report):
        assert 0.15 < report.predictable_ratio["Bank"] < 0.45

    def test_fig3b_single_row_dominates(self, report):
        slices = report.fig3b_slices
        assert slices["Single-row Clustering"] > 0.5
        aggregation = (slices["Single-row Clustering"]
                       + slices["Double-row Clustering"]
                       + slices["Half Total-row Clustering"])
        assert 0.65 < aggregation < 0.93

    def test_locality_peak_band(self, report):
        assert report.locality_peak in (64, 128, 256)

    def test_table2_monotone_down_the_hierarchy(self, report):
        counts = report.table2_counts
        order = ["NPU", "HBM", "SID", "PS-CH", "BG", "Bank", "Row"]
        for column in range(4):
            values = [counts[level][column] for level in order]
            assert values == sorted(values), f"column {column} not monotone"

    def test_uer_rows_per_bank_band(self, report):
        rows = report.table2_counts["Row"][2]
        banks = report.table2_counts["Bank"][2]
        assert 3.0 < rows / banks < 7.5

    def test_ueo_concentration(self, report):
        """UEOs concentrate in fewer banks than UERs (Table II structure)."""
        ueo_banks = report.table2_counts["Bank"][1]
        uer_banks = report.table2_counts["Bank"][2]
        assert ueo_banks < uer_banks

    def test_report_summary_renders(self, report):
        text = report.summary_lines()
        assert "Table I" in text and "Figure 4" in text

    def test_errors_helpers(self, report):
        errors = report.predictable_ratio_errors()
        assert set(errors) == set(CalibrationTargets().predictable_ratio)
        assert all(e >= 0 for e in errors.values())
        fig_errors = report.fig3b_errors()
        assert all(0 <= e <= 1 for e in fig_errors.values())


class TestScaling:
    def test_scaled_counts(self):
        config = FleetGenConfig(scale=0.05)
        assert config.scaled_bad_hbms == round(421 * 0.05)
        assert config.scaled_cell_faults == round(8200 * 0.05)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            FleetGenConfig(scale=0.0)
