"""Tests for the markdown report generator."""

import pytest

from repro.core.costmodel import CostParams
from repro.core.isolation import ICRResult
from repro.core.pipeline import CordialEvaluation
from repro.core.report import render_markdown_report, write_markdown_report
from repro.faults.types import FailurePattern
from repro.ml.metrics import ClassScores, WeightedScores


def make_evaluation(model="Random Forest", icr=0.2, f1=0.4):
    scores = {
        FailurePattern.SINGLE_ROW: ClassScores(0.9, 0.95, 0.92, 80),
        FailurePattern.DOUBLE_ROW: ClassScores(0.7, 0.6, 0.65, 12),
        FailurePattern.SCATTERED: ClassScores(0.88, 0.9, 0.89, 30),
    }
    return CordialEvaluation(
        model_name=model,
        pattern_scores=scores,
        pattern_weighted=WeightedScores(0.88, 0.9, 0.89, 122),
        block_scores=ClassScores(0.5, f1, f1, 60),
        icr=ICRResult(covered_rows=int(icr * 500), total_rows=500,
                      covered_by_bank_sparing=40, spared_rows=800,
                      spared_banks=20),
        n_test_triggers=122,
        n_crossrow_banks=90,
    )


class TestRender:
    def test_contains_all_sections(self):
        text = render_markdown_report(make_evaluation())
        for heading in ("# Cordial evaluation report",
                        "## Failure-pattern classification",
                        "## Cross-row block prediction",
                        "## Isolation coverage"):
            assert heading in text

    def test_pattern_table_rows(self):
        text = render_markdown_report(make_evaluation())
        assert "| Single-row Clustering |" in text
        assert "| **Weighted average** |" in text

    def test_baseline_comparison(self):
        text = render_markdown_report(make_evaluation(icr=0.2),
                                      baseline=make_evaluation(
                                          model="Neighbor Rows", icr=0.1,
                                          f1=0.2))
        assert "vs Neighbor-Rows baseline" in text
        assert "relative ICR improvement" in text
        assert "+100.0%" in text

    def test_cost_section(self):
        text = render_markdown_report(make_evaluation(),
                                      cost_params=CostParams())
        assert "## Cost model" in text
        assert "net benefit" in text

    def test_no_cost_section_without_params(self):
        assert "## Cost model" not in render_markdown_report(
            make_evaluation())

    def test_custom_title(self):
        text = render_markdown_report(make_evaluation(), title="Q3 review")
        assert text.startswith("# Q3 review")


class TestWrite:
    def test_writes_file(self, tmp_path):
        path = write_markdown_report(make_evaluation(),
                                     tmp_path / "report.md")
        assert path.exists()
        assert "Isolation coverage" in path.read_text()

    def test_roundtrip_with_real_evaluation(self, small_dataset, bank_split,
                                            tmp_path):
        from repro.core.pipeline import Cordial, evaluate_neighbor_baseline
        train, test = bank_split
        model = Cordial(model_name="LightGBM", random_state=0)
        model.fit(small_dataset, train)
        evaluation = model.evaluate(small_dataset, test)
        baseline = evaluate_neighbor_baseline(small_dataset, test)
        path = write_markdown_report(evaluation, tmp_path / "real.md",
                                     baseline=baseline,
                                     cost_params=CostParams())
        text = path.read_text()
        assert "LightGBM" in text
        assert "## Cost model" in text
