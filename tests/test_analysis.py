"""Tests for the empirical-study analyses (Tables I-II, Figures 3-4)."""

import numpy as np
import pytest

from repro.analysis.locality import (LocalityCurve, chi_square_within_threshold,
                                     compute_locality_chisquare,
                                     consecutive_uer_distances,
                                     format_locality_curve)
from repro.analysis.patterns_dist import (ascii_bank_map, bank_error_map,
                                          compute_pattern_distribution,
                                          example_bank_maps,
                                          format_distribution)
from repro.analysis.sudden import (classify_unit_sudden,
                                   compute_sudden_uer_table,
                                   format_sudden_table)
from repro.analysis.summary import compute_dataset_summary, format_summary_table
from repro.hbm.address import DeviceAddress, MicroLevel
from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.store import ErrorStore


def rec(seq, t, row, error_type, bank=0):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=bank,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


class TestSudden:
    def test_hand_built_sudden_and_not(self):
        store = ErrorStore([
            rec(0, 100.0, 5, ErrorType.CE, bank=0),
            rec(1, 200.0, 6, ErrorType.UER, bank=0),   # non-sudden bank
            rec(2, 300.0, 7, ErrorType.UER, bank=1),   # sudden bank
        ])
        bank0 = rec(0, 0, 5, ErrorType.CE, bank=0).bank_key
        bank1 = rec(0, 0, 5, ErrorType.CE, bank=1).bank_key
        assert not classify_unit_sudden(store, MicroLevel.BANK, bank0,
                                        lookback_days=None)
        assert classify_unit_sudden(store, MicroLevel.BANK, bank1,
                                    lookback_days=None)

    def test_lookback_window_excludes_old_signals(self):
        day = 86400.0
        store = ErrorStore([
            rec(0, 0.0, 5, ErrorType.CE),
            rec(1, 10 * day, 6, ErrorType.UER),
        ])
        key = rec(0, 0, 5, ErrorType.CE).bank_key
        assert classify_unit_sudden(store, MicroLevel.BANK, key,
                                    lookback_days=1.0)
        assert not classify_unit_sudden(store, MicroLevel.BANK, key,
                                        lookback_days=None)

    def test_unit_without_uer_rejected(self):
        store = ErrorStore([rec(0, 1.0, 5, ErrorType.CE)])
        with pytest.raises(ValueError):
            classify_unit_sudden(store, MicroLevel.BANK,
                                 rec(0, 1.0, 5, ErrorType.CE).bank_key)

    def test_table_structure(self, small_dataset):
        table = compute_sudden_uer_table(small_dataset.store)
        assert set(table) == set(MicroLevel.paper_levels())
        for stats in table.values():
            assert stats.total == stats.sudden + stats.non_sudden
        # Table I invariant: totals equal units-with-UER of Table II
        summary = compute_dataset_summary(small_dataset.store)
        for level in MicroLevel.paper_levels():
            assert table[level].total == summary[level].with_uer

    def test_formatting(self, small_dataset):
        text = format_sudden_table(
            compute_sudden_uer_table(small_dataset.store))
        assert "Predictable Ratio" in text and "Row" in text


class TestSummary:
    def test_hand_built_counts(self):
        store = ErrorStore([
            rec(0, 1.0, 5, ErrorType.CE, bank=0),
            rec(1, 2.0, 5, ErrorType.UER, bank=0),
            rec(2, 3.0, 9, ErrorType.UEO, bank=1),
        ])
        summary = compute_dataset_summary(store)
        bank_row = summary[MicroLevel.BANK]
        assert (bank_row.with_ce, bank_row.with_ueo, bank_row.with_uer,
                bank_row.total) == (1, 1, 1, 2)
        row_row = summary[MicroLevel.ROW]
        assert row_row.total == 2

    def test_formatting(self, small_dataset):
        text = format_summary_table(
            compute_dataset_summary(small_dataset.store))
        assert "With UEO" in text


class TestLocality:
    def test_consecutive_distances_hand_example(self):
        store = ErrorStore([
            rec(0, 1.0, 100, ErrorType.UER),
            rec(1, 2.0, 160, ErrorType.UER),
            rec(2, 3.0, 40, ErrorType.UER),
        ])
        distances = consecutive_uer_distances(store)
        assert sorted(distances.tolist()) == [60, 120]

    def test_chi_square_zero_for_no_pairs(self):
        assert chi_square_within_threshold(np.array([]), 128, 32768) == 0.0

    def test_chi_square_grows_with_concentration(self):
        concentrated = np.full(1000, 50)
        spread = np.random.default_rng(0).integers(0, 32768, 1000)
        chi_c = chi_square_within_threshold(concentrated, 128, 32768)
        chi_s = chi_square_within_threshold(spread, 128, 32768)
        assert chi_c > chi_s

    def test_curve_peak_on_fleet(self, small_dataset):
        curve = compute_locality_chisquare(small_dataset.store)
        assert isinstance(curve, LocalityCurve)
        assert curve.n_pairs > 100
        assert curve.peak_threshold in (64, 128, 256)
        assert len(curve.as_dict()) == 10

    def test_formatting_marks_peak(self, small_dataset):
        curve = compute_locality_chisquare(small_dataset.store)
        assert "<-- peak" in format_locality_curve(curve)


class TestPatternDistribution:
    def test_distribution_sums_to_one(self, small_dataset):
        distribution = compute_pattern_distribution(small_dataset)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution["Single-row Clustering"] > 0.4

    def test_min_uer_rows_filter(self, small_dataset):
        loose = compute_pattern_distribution(small_dataset, min_uer_rows=1)
        strict = compute_pattern_distribution(small_dataset, min_uer_rows=5)
        assert set(loose) == set(strict)

    def test_example_maps_cover_patterns(self, small_dataset):
        maps = example_bank_maps(small_dataset, min_uer_rows=2)
        assert "Single-row Clustering" in maps
        for points in maps.values():
            assert points
            for column, row, kind in points:
                assert 0 <= column < 128
                assert 0 <= row < 32768
                assert kind in ("CE", "UEO", "UER")

    def test_bank_error_map_matches_store(self, small_dataset):
        bank = small_dataset.uer_banks[0]
        points = bank_error_map(small_dataset, bank)
        assert len(points) == len(small_dataset.store.bank_events(bank))

    def test_ascii_rendering(self, small_dataset):
        maps = example_bank_maps(small_dataset, min_uer_rows=2)
        label, points = next(iter(maps.items()))
        art = ascii_bank_map(points)
        assert "#" in art
        assert len(art.splitlines()) == 24

    def test_format_distribution_with_reference(self, small_dataset):
        distribution = compute_pattern_distribution(small_dataset)
        text = format_distribution(distribution,
                                   reference={"Single-row Clustering": 0.682})
        assert "Paper" in text
