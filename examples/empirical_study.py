"""Reproduce the paper's empirical study (Section III) end to end.

Run:  python examples/empirical_study.py

Regenerates, on the calibrated synthetic fleet:
  * Table I  — why in-row prediction fails (sudden-UER ratios),
  * Figure 3 — which bank failure patterns exist and how often,
  * Figure 4 — how far cross-row locality reaches (the 128-row peak),
plus the in-row predictor's actual coverage ceiling, measured directly.
"""

from repro.analysis.locality import (compute_locality_chisquare,
                                     format_locality_curve)
from repro.analysis.patterns_dist import (ascii_bank_map,
                                          compute_pattern_distribution,
                                          example_bank_maps,
                                          format_distribution)
from repro.analysis.sudden import compute_sudden_uer_table, format_sudden_table
from repro.analysis.summary import compute_dataset_summary, format_summary_table
from repro.core.baselines import InRowPredictor
from repro.datasets import CalibrationTargets, FleetGenConfig, generate_fleet_dataset

print("Generating synthetic fleet (scale 0.5)...\n")
dataset = generate_fleet_dataset(FleetGenConfig(scale=0.5), seed=1)
targets = CalibrationTargets()

# -- Table I ----------------------------------------------------------------
print(format_sudden_table(compute_sudden_uer_table(dataset.store)))
print("(paper row-level predictable ratio: 4.39%)\n")

# -- Table II ----------------------------------------------------------------
print(format_summary_table(compute_dataset_summary(dataset.store)))
print()

# -- the in-row ceiling, measured directly ------------------------------------
predictor = InRowPredictor()
covered = total = 0
for bank in dataset.uer_banks:
    c, t = predictor.coverage(dataset.store.bank_events(bank))
    covered += c
    total += t
print(f"In-row predictor coverage ceiling: {covered}/{total} UER rows "
      f"({covered / total:.2%}) — the motivation for cross-row prediction\n")

# -- Figure 3(b) -----------------------------------------------------------------
print(format_distribution(compute_pattern_distribution(dataset),
                          reference=targets.fig3b_slices))
print()

# -- Figure 3(a) -----------------------------------------------------------------
print("Figure 3(a) — example bank error maps "
      "(# = UER, o = UEO, . = CE; rows top-to-bottom, columns left-to-right)")
for label, points in example_bank_maps(dataset).items():
    print(f"\n--- {label} ({len(points)} events) ---")
    print(ascii_bank_map(points, height=16, width=64))

# -- Figure 4 ----------------------------------------------------------------------
print()
curve = compute_locality_chisquare(dataset.store)
print(format_locality_curve(curve))
print(f"\nMeasured peak at {curve.peak_threshold} rows "
      f"(paper: {targets.locality_peak_threshold}) -> Cordial predicts "
      f"within +/-{curve.peak_threshold // 2} rows of the last UER row.")
