"""What-if capacity planning across fleet scenarios.

Run:  python examples/capacity_planning.py

A platform team sizing spare capacity and deciding whether Cordial earns
its keep needs answers under futures, not just the calibrated present.
This example trains one Cordial model on the baseline fleet, then replays
it against named what-if scenarios (an aged fleet, a packaging regression
that doubles scattered faults, a sudden-error-heavy fleet, compressed
failure timelines) and prices each outcome with the cost model.
"""

from repro.core.costmodel import CostParams, price_result
from repro.core.pipeline import Cordial, evaluate_neighbor_baseline
from repro.datasets import generate_fleet_dataset
from repro.faults.scenarios import SCENARIOS
from repro.ml.selection import train_test_split_groups

SCALE = 0.15
COSTS = CostParams()

# -- train once, on the calibrated baseline --------------------------------
print("Training Cordial on the baseline fleet...")
base_dataset = generate_fleet_dataset(SCENARIOS["baseline"](SCALE), seed=0)
train_banks, _ = train_test_split_groups(base_dataset.uer_banks, 0.3,
                                         seed=7)
cordial = Cordial(model_name="LightGBM", random_state=0)
cordial.fit(base_dataset, train_banks)

# -- replay against each scenario --------------------------------------------
rows = []
for name in ("baseline", "aged-fleet", "tsv-dominant", "sudden-heavy",
             "fast-failing"):
    dataset = generate_fleet_dataset(SCENARIOS[name](SCALE), seed=99)
    banks = dataset.uer_banks
    evaluation = cordial.evaluate(dataset, banks)
    baseline_eval = evaluate_neighbor_baseline(dataset, banks)
    cost = price_result(evaluation.icr, COSTS)
    base_cost = price_result(baseline_eval.icr, COSTS)
    rows.append((name, evaluation.icr.icr, baseline_eval.icr.icr,
                 evaluation.icr.spared_rows, evaluation.icr.spared_banks,
                 cost.net_benefit - base_cost.net_benefit))

print(f"\n{'Scenario':<14}{'Cordial ICR':>12}{'baseline ICR':>14}"
      f"{'rows':>7}{'banks':>7}{'net benefit vs baseline':>26}")
for name, icr, base_icr, spared_rows, spared_banks, delta in rows:
    print(f"{name:<14}{icr:>12.2%}{base_icr:>14.2%}{spared_rows:>7}"
          f"{spared_banks:>7}{delta:>+26,.0f}")

print(
    "\nReading: the model was trained on the baseline distribution only.\n"
    "Coverage collapses under 'sudden-heavy' (precursor signals vanish —\n"
    "the regime the paper's sudden-error study warns about), to the point\n"
    "where Cordial no longer out-earns the simple baseline. The spatial\n"
    "what-ifs are kinder: 'tsv-dominant' shifts mitigation from row\n"
    "sparing to bank sparing (watch the banks column) and 'fast-failing'\n"
    "holds up because re-prediction keeps pace with the shortened\n"
    "timelines.")
