"""Compare isolation policies: coverage vs cost.

Run:  python examples/sparing_policy_comparison.py

Table IV reports coverage (ICR); an operator also cares what each policy
*spends* — spare rows are scarce (post-package repair budgets) and bank
retirement sacrifices capacity.  This example replays the same test fleet
under four policies and reports both sides:

  * Neighbor Rows  — the industrial baseline (+/-4 rows per observed UER),
  * In-row         — spare a row only after it already misbehaved (CE/UEO),
  * Cordial        — pattern classification + cross-row block prediction,
  * Oracle         — isolate exactly the true future UER rows at trigger
                     time (the coverage ceiling given the 3-UER trigger).
"""

from repro.core.baselines import InRowPredictor, NeighborRowsBaseline
from repro.core.isolation import IsolationReplay
from repro.core.pipeline import Cordial, collect_triggers
from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups
from repro.telemetry.events import ErrorType

dataset = generate_fleet_dataset(FleetGenConfig(scale=0.25), seed=5)
train_banks, test_banks = train_test_split_groups(
    dataset.uer_banks, test_fraction=0.3, seed=17)
truth_rows = {bank: dataset.bank_truth[bank].uer_row_sequence
              for bank in test_banks
              if dataset.bank_truth[bank].uer_row_sequence}

results = {}

# -- Neighbor Rows -------------------------------------------------------------
baseline = NeighborRowsBaseline()
env = baseline.replay({bank: dataset.store.bank_events(bank)
                       for bank in test_banks})
results["Neighbor Rows"] = env.result(truth_rows)

# -- In-row (spare a row after its first CE/UEO) ---------------------------------
env = IsolationReplay()
in_row = InRowPredictor(min_precursors=1)
for bank in test_banks:
    for record in dataset.store.bank_events(bank):
        if record.error_type in (ErrorType.CE, ErrorType.UEO):
            env.isolate_rows(bank, [record.row], record.timestamp)
results["In-row"] = env.result(truth_rows)

# -- Cordial ----------------------------------------------------------------------
print("Training Cordial...")
cordial = Cordial(model_name="Random Forest", random_state=0)
cordial.fit(dataset, train_banks)
results["Cordial (RF)"] = cordial.evaluate(dataset, test_banks).icr

# -- Oracle (ceiling) ----------------------------------------------------------------
env = IsolationReplay(spares_per_bank=64)
for trigger in collect_triggers(dataset, test_banks):
    truth = dataset.bank_truth[trigger.bank_key]
    future = [row for _, row in truth.future_uer_rows(trigger.timestamp)]
    env.isolate_rows(trigger.bank_key, future, trigger.timestamp)
results["Oracle @trigger"] = env.result(truth_rows)

# -- report ---------------------------------------------------------------------------
print(f"\n{'Policy':<18}{'ICR':>8}{'rows spared':>13}{'banks retired':>15}"
      f"{'rows / covered row':>20}")
for name, r in results.items():
    efficiency = (r.spared_rows / r.covered_rows if r.covered_rows
                  else float("inf"))
    print(f"{name:<18}{r.icr:>8.2%}{r.spared_rows:>13}"
          f"{r.spared_banks:>15}{efficiency:>20.1f}")

print("\nReading: the oracle shows how much of the miss is *irreducible* "
      "(rows that fail\nbefore the trigger can never be preempted); Cordial "
      "closes a large part of the\nremaining gap at moderate sparing cost, "
      "while the reactive baseline spends its\nrows next to failures that "
      "rarely recur within +/-4 rows.")
