"""Quickstart: generate a fleet, train Cordial, predict, and score it.

Run:  python examples/quickstart.py

This walks the full public API in five steps:
  1. generate a calibrated synthetic HBM fleet (the paper's data substitute),
  2. split its error banks 7:3,
  3. train Cordial (pattern classifier + cross-row predictor),
  4. inspect one live prediction,
  5. evaluate pattern F1, block F1 and the Isolation Coverage Rate.
"""

from repro.core.pipeline import Cordial, collect_triggers, evaluate_neighbor_baseline
from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups

# -- 1. a small synthetic fleet (use scale=1.0 for the paper's magnitude) ----
print("Generating synthetic HBM fleet (scale 0.25)...")
dataset = generate_fleet_dataset(FleetGenConfig(scale=0.25), seed=0)
print(f"  events:    {len(dataset.store):,}")
print(f"  UER banks: {len(dataset.uer_banks)}")

# -- 2. the paper's 7:3 bank-level split -------------------------------------
train_banks, test_banks = train_test_split_groups(
    dataset.uer_banks, test_fraction=0.3, seed=7)
print(f"  split:     {len(train_banks)} train / {len(test_banks)} test banks")

# -- 3. train Cordial ---------------------------------------------------------
print("\nTraining Cordial (Random Forest)...")
cordial = Cordial(model_name="Random Forest", random_state=0)
cordial.fit(dataset, train_banks)
print(f"  block-flagging threshold: "
      f"{cordial.predictor.effective_threshold:.2f}")

# -- 4. one live prediction ----------------------------------------------------
trigger = collect_triggers(dataset, test_banks)[0]
pattern = cordial.classifier.predict(trigger.history)
print(f"\nBank {trigger.bank_key}: third UER at row "
      f"{trigger.uer_rows[-1]}")
print(f"  classified pattern: {pattern.value}")
if pattern.is_aggregation:
    prediction = cordial.predictor.predict(trigger.history,
                                           trigger.uer_rows[-1])
    flagged = [b for b, f in enumerate(prediction.flagged) if f]
    print(f"  flagged blocks:     {flagged or 'none'}")
    print(f"  rows to isolate:    {len(prediction.rows_to_isolate())}")
else:
    print("  -> scattered: the whole bank would be spared")

# -- 5. evaluate against the paper's metrics -----------------------------------
print("\nEvaluating on the test split...")
evaluation = cordial.evaluate(dataset, test_banks)
baseline = evaluate_neighbor_baseline(dataset, test_banks)
w, b = evaluation.pattern_weighted, evaluation.block_scores
print(f"  pattern classification: weighted F1 = {w.f1:.3f}")
print(f"  cross-row blocks:       P={b.precision:.3f} R={b.recall:.3f} "
      f"F1={b.f1:.3f}")
print(f"  Isolation Coverage Rate: {evaluation.icr.icr:.2%} "
      f"(Neighbor-Rows baseline: {baseline.icr.icr:.2%})")
