"""Working with MCE logs on disk: export, parse, and run Cordial on a file.

Run:  python examples/mce_log_pipeline.py

Real deployments hand Cordial a log file collected from BMCs, not an
in-memory object.  This example exports a generated fleet to the MCE-log
dialect, reads it back (with integrity checks), rebuilds the indexed
store, and drives the trigger/prediction path from the parsed events —
proving the whole pipeline runs from a plain file.
"""

import tempfile
from pathlib import Path

from repro.core.pipeline import Cordial
from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups
from repro.telemetry.collector import BMCCollector
from repro.telemetry.mcelog import read_mce_log, write_mce_log
from repro.telemetry.store import ErrorStore

# -- export a fleet's telemetry to disk ---------------------------------------
dataset = generate_fleet_dataset(FleetGenConfig(scale=0.12), seed=9)
log_path = Path(tempfile.gettempdir()) / "cordial_fleet.mce"
count = write_mce_log(dataset.store, log_path)
size_kib = log_path.stat().st_size / 1024
print(f"Exported {count:,} events to {log_path} ({size_kib:,.0f} KiB)")

# -- parse it back and rebuild the indexed store -------------------------------
records = read_mce_log(log_path)
store = ErrorStore(records)
assert len(store) == len(dataset.store)
print(f"Parsed back {len(store):,} events; "
      f"{len(store.banks_with_min_uer_rows(3))} banks reach the "
      "3-UER trigger")

# -- train Cordial, then drive it from the parsed stream -------------------------
train_banks, test_banks = train_test_split_groups(
    dataset.uer_banks, test_fraction=0.3, seed=23)
cordial = Cordial(model_name="LightGBM", random_state=0)
cordial.fit(dataset, train_banks)

print("\nDecisions from the parsed log stream:")
test_set = set(test_banks)
collector = BMCCollector(trigger_uer_rows=3)
shown = 0
test_stream = (record for record in records if record.bank_key in test_set)
for trigger in collector.replay(test_stream):
    if shown >= 8:
        continue
    shown += 1
    pattern = cordial.classifier.predict(trigger.history)
    if pattern.is_aggregation:
        prediction = cordial.predictor.predict(trigger.history,
                                               trigger.uer_rows[-1])
        detail = f"isolate {int(prediction.flagged.sum())} blocks"
    else:
        detail = "retire bank"
    print(f"  bank {trigger.bank_key}: {pattern.value:<22} -> {detail}")

log_path.unlink()
print("\nDone (log file removed).")
