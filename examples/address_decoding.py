"""Decoding raw physical addresses — why the address map matters.

Run:  python examples/address_decoding.py

Platforms log MCE *physical addresses*; spatial analyses like the paper's
only work after decoding them into (bank, row, column) coordinates.  This
example shows the round trip and, more importantly, what goes wrong when
the analyst assumes the wrong map: a genuine single-row cluster, viewed
through raw addresses or a wrong layout, looks scattered — and Cordial's
whole premise (bank-level error locality) disappears.
"""

import numpy as np

from repro.hbm.addressmap import (FIELDS, AddressLayout, AddressMapper,
                                  default_hbm2e_mapper)

rng = np.random.default_rng(0)
mapper = default_hbm2e_mapper()

# -- a genuine cluster: one bank, rows around 12000, pitch 40 ----------------
bank_coordinate = {"channel": 3, "pseudo_channel": 1, "bank_group": 2,
                   "bank": 1, "sid": 0}
cluster_rows = [12000 + 40 * k for k in range(6)]
addresses = [mapper.encode({**bank_coordinate, "row": row,
                            "column": int(rng.integers(0, 128))})
             for row in cluster_rows]

print("A single-row cluster (pitch 40) in physical address space:")
for row, address in zip(cluster_rows, addresses):
    print(f"  row {row}  ->  0x{address:08x}")

spans = max(addresses) - min(addresses)
print(f"\nRaw-address span: {spans:,} bytes-of-address-space "
      f"(row stride is {mapper.row_stride():,})")
print("Naively clustering raw addresses would work here — but only "
      "because\nthese rows share a bank. Watch what the bank hash does "
      "to the *stored* bits:")
for row in cluster_rows[:4]:
    address = mapper.encode({**bank_coordinate, "row": row, "column": 0})
    stored_bank = (address >> mapper._offsets["bank"]) & 0b11
    print(f"  row {row}: stored bank bits = {stored_bank:02b} "
          f"(true bank = {bank_coordinate['bank']:02b})")

# -- decode with the right map: the cluster reappears ---------------------------
decoded_rows = [mapper.decode(a)["row"] for a in addresses]
decoded_banks = {mapper.decode(a)["bank"] for a in addresses}
print(f"\nDecoded with the correct map: rows {decoded_rows}, "
      f"banks {sorted(decoded_banks)} -> one tight cluster. Good.")

# -- decode with the WRONG map: the cluster shatters ------------------------------
wrong = AddressMapper(layout=AddressLayout(
    order=("row", "channel", "pseudo_channel", "bank_group", "bank",
           "sid", "column")))
wrong_rows = sorted(wrong.decode(a)["row"] for a in addresses)
wrong_banks = {wrong.decode(a)["bank"] for a in addresses}
print(f"\nDecoded with a WRONG layout (row bits taken from the low end):")
print(f"  rows  -> {wrong_rows}")
print(f"  banks -> {sorted(wrong_banks)}")
print("The same six errors now span the whole row space across several "
      "banks —\nan analyst would label this bank 'scattered' and retire "
      "it instead of\nsparing six rows. Validate the address map before "
      "trusting any spatial claim.")

# -- neighbourhood arithmetic stays in address space -------------------------------
neighbour = mapper.neighbours_in_address_space(addresses[0], row_delta=40)
print(f"\nNeighbour arithmetic: row+40 of 0x{addresses[0]:08x} is "
      f"0x{neighbour:08x} (decoded row "
      f"{mapper.decode(neighbour)['row']}).")
