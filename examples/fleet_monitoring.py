"""Online fleet monitoring: Cordial as a streaming service.

Run:  python examples/fleet_monitoring.py

The deployment scenario of the paper's introduction: a training cluster's
BMC streams MCE events; every time a bank reaches its third UER, Cordial
classifies it and either row-spares the predicted blocks (aggregation
patterns) or retires the bank (scattered).  This example replays a test
fleet's stream chronologically through the collector and shows the
decision log plus the final coverage accounting — including sparing cost,
which Table IV's ICR alone does not show.
"""

from collections import Counter

from repro.core.isolation import IsolationReplay
from repro.core.pipeline import Cordial
from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups
from repro.telemetry.collector import BMCCollector

# -- train on historical data ---------------------------------------------------
dataset = generate_fleet_dataset(FleetGenConfig(scale=0.25), seed=3)
train_banks, live_banks = train_test_split_groups(
    dataset.uer_banks, test_fraction=0.3, seed=11)
print(f"Training Cordial on {len(train_banks)} historical banks...")
cordial = Cordial(model_name="Random Forest", random_state=0)
cordial.fit(dataset, train_banks)

# -- replay the live stream ------------------------------------------------------
print(f"\nReplaying the live stream of {len(live_banks)} banks "
      "chronologically...\n")
live_set = set(live_banks)
collector = BMCCollector(trigger_uer_rows=3)
replay = IsolationReplay(spares_per_bank=64)
decisions = Counter()
shown = 0

live_stream = (record for record in dataset.store
               if record.bank_key in live_set)
for trigger in collector.replay(live_stream):
    pattern = cordial.classifier.predict(trigger.history)
    decisions[pattern.value] += 1
    day = trigger.timestamp / 86400.0
    if pattern.is_aggregation:
        prediction = cordial.predictor.predict(trigger.history,
                                               trigger.uer_rows[-1])
        rows = prediction.rows_to_isolate()
        replay.isolate_rows(trigger.bank_key, rows, trigger.timestamp)
        action = f"row-spare {len(rows)} rows"
    else:
        replay.isolate_bank(trigger.bank_key, trigger.timestamp)
        action = "retire bank"
    if shown < 12:
        shown += 1
        print(f"  day {day:6.1f}  bank {trigger.bank_key}  "
              f"{pattern.value:<22} -> {action}")

print(f"\nDecisions: {dict(decisions)}")

# -- final accounting --------------------------------------------------------------
truth_rows = {bank: dataset.bank_truth[bank].uer_row_sequence
              for bank in live_banks if dataset.bank_truth[bank].uer_row_sequence}
result = replay.result(truth_rows)
print("\nEnd-of-window accounting:")
print(f"  UER rows in live banks:        {result.total_rows}")
print(f"  preemptively isolated:         {result.covered_rows} "
      f"(ICR {result.icr:.2%})")
print(f"    via cross-row predictions:   "
      f"{result.covered_rows - result.covered_by_bank_sparing}")
print(f"    via bank retirement:         {result.covered_by_bank_sparing}")
print(f"  isolation cost: {result.spared_rows} spare rows, "
      f"{result.spared_banks} retired banks")
print(f"  sparing-budget exhaustions:    {replay.exhausted_requests}")
